"""Tests for MetalRule, ViaRule and TechnologyNode."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.tech.device import DeviceParameters
from repro.tech.materials import COPPER, SIO2
from repro.tech.node import MetalRule, TechnologyNode, ViaRule


@pytest.fixture
def rule():
    return MetalRule(
        min_width=units.um(0.2),
        min_spacing=units.um(0.21),
        thickness=units.um(0.34),
    )


class TestMetalRule:
    def test_pitch(self, rule):
        assert rule.pitch == pytest.approx(units.um(0.41))

    def test_aspect_ratio(self, rule):
        assert rule.aspect_ratio == pytest.approx(0.34 / 0.2)

    def test_ild_defaults_to_thickness(self, rule):
        assert rule.ild_height == pytest.approx(rule.thickness)

    def test_explicit_ild_height(self):
        rule = MetalRule(
            min_width=units.um(0.2),
            min_spacing=units.um(0.2),
            thickness=units.um(0.3),
            ild_height=units.um(0.5),
        )
        assert rule.ild_height == pytest.approx(units.um(0.5))

    @pytest.mark.parametrize("field", ["min_width", "min_spacing", "thickness"])
    def test_non_positive_rejected(self, field):
        values = dict(
            min_width=units.um(0.2),
            min_spacing=units.um(0.2),
            thickness=units.um(0.3),
        )
        values[field] = 0.0
        with pytest.raises(ConfigurationError):
            MetalRule(**values)

    def test_negative_ild_rejected(self):
        with pytest.raises(ConfigurationError):
            MetalRule(
                min_width=units.um(0.2),
                min_spacing=units.um(0.2),
                thickness=units.um(0.3),
                ild_height=-1.0,
            )

    def test_scaled_uniform(self, rule):
        scaled = rule.scaled(0.5)
        assert scaled.min_width == pytest.approx(rule.min_width * 0.5)
        assert scaled.min_spacing == pytest.approx(rule.min_spacing * 0.5)
        assert scaled.thickness == pytest.approx(rule.thickness * 0.5)
        assert scaled.ild_height == pytest.approx(rule.ild_height * 0.5)

    def test_scaled_rejects_non_positive(self, rule):
        with pytest.raises(ConfigurationError):
            rule.scaled(0.0)


class TestViaRule:
    def test_blocked_area_without_enclosure(self):
        via = ViaRule(min_width=units.um(0.2))
        assert via.blocked_area == pytest.approx(units.um2(0.04))

    def test_blocked_area_with_enclosure(self):
        via = ViaRule(min_width=units.um(0.2), enclosure=units.um(0.05))
        assert via.blocked_area == pytest.approx(units.um2(0.09))

    def test_non_positive_width_rejected(self):
        with pytest.raises(ConfigurationError):
            ViaRule(min_width=0.0)

    def test_negative_enclosure_rejected(self):
        with pytest.raises(ConfigurationError):
            ViaRule(min_width=units.um(0.2), enclosure=-1e-9)


class TestTechnologyNode:
    def _make(self, **overrides):
        rule = MetalRule(
            min_width=units.um(0.2),
            min_spacing=units.um(0.2),
            thickness=units.um(0.3),
        )
        via = ViaRule(min_width=units.um(0.2))
        values = dict(
            name="test",
            feature_size=units.nm(130),
            metal_rules={"local": rule, "semi_global": rule, "global": rule},
            via_rules={"local": via, "semi_global": via, "global": via},
            device=DeviceParameters(
                output_resistance=3000.0,
                input_capacitance=1e-15,
                parasitic_capacitance=1e-15,
                min_inverter_area=4e-14,
            ),
            conductor=COPPER,
            dielectric=SIO2,
        )
        values.update(overrides)
        return TechnologyNode(**values)

    def test_gate_pitch_rule(self):
        node = self._make()
        assert node.gate_pitch == pytest.approx(12.6 * units.nm(130))

    def test_missing_tier_rejected(self):
        rule = MetalRule(
            min_width=units.um(0.2),
            min_spacing=units.um(0.2),
            thickness=units.um(0.3),
        )
        with pytest.raises(ConfigurationError):
            self._make(metal_rules={"local": rule})

    def test_metal_lookup_error_message(self):
        node = self._make()
        with pytest.raises(ConfigurationError, match="no tier"):
            node.metal("globall")

    def test_via_lookup_error_message(self):
        node = self._make()
        with pytest.raises(ConfigurationError, match="no via tier"):
            node.via("m1")

    def test_with_permittivity(self):
        node = self._make()
        changed = node.with_permittivity(2.5)
        assert changed.dielectric.relative_permittivity == pytest.approx(2.5)
        assert node.dielectric.relative_permittivity == pytest.approx(3.9)

    def test_with_device(self):
        node = self._make()
        new_device = DeviceParameters(
            output_resistance=1000.0,
            input_capacitance=2e-15,
            parasitic_capacitance=1e-15,
            min_inverter_area=1e-14,
        )
        assert node.with_device(new_device).device is new_device

    def test_non_positive_feature_size_rejected(self):
        with pytest.raises(ConfigurationError):
            self._make(feature_size=0.0)
