"""Tests for minimum-inverter device parameters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tech.device import DeviceParameters


@pytest.fixture
def device():
    return DeviceParameters(
        output_resistance=3000.0,
        input_capacitance=1.0e-15,
        parasitic_capacitance=1.0e-15,
        min_inverter_area=4.0e-14,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "output_resistance",
            "input_capacitance",
            "parasitic_capacitance",
            "min_inverter_area",
        ],
    )
    def test_non_positive_rejected(self, field):
        values = dict(
            output_resistance=3000.0,
            input_capacitance=1e-15,
            parasitic_capacitance=1e-15,
            min_inverter_area=4e-14,
        )
        values[field] = 0.0
        with pytest.raises(ConfigurationError):
            DeviceParameters(**values)


class TestIntrinsicDelay:
    def test_value(self, device):
        assert device.intrinsic_delay == pytest.approx(3000.0 * 2.0e-15)

    def test_size_invariance(self, device):
        """r_o/s * (s*c_o + s*c_p) is independent of s — the physical
        reason short wires hit a delay wall no sizing can fix."""
        for size in (1.0, 10.0, 100.0):
            product = device.repeater_resistance(size) * (
                device.repeater_input_capacitance(size)
                + size * device.parasitic_capacitance
            )
            assert product == pytest.approx(device.intrinsic_delay)


class TestRepeaterScaling:
    def test_resistance_scales_down(self, device):
        assert device.repeater_resistance(10.0) == pytest.approx(300.0)

    def test_capacitance_scales_up(self, device):
        assert device.repeater_input_capacitance(10.0) == pytest.approx(1.0e-14)

    def test_area_scales_linearly(self, device):
        assert device.repeater_area(50.0) == pytest.approx(50 * 4.0e-14)

    @pytest.mark.parametrize("method", [
        "repeater_resistance",
        "repeater_input_capacitance",
        "repeater_area",
    ])
    def test_non_positive_size_rejected(self, device, method):
        with pytest.raises(ConfigurationError):
            getattr(device, method)(0.0)

    @given(size=st.floats(min_value=0.01, max_value=1e4))
    def test_rc_product_constant_property(self, size):
        device = DeviceParameters(
            output_resistance=2500.0,
            input_capacitance=0.6e-15,
            parasitic_capacitance=0.4e-15,
            min_inverter_area=2.5e-14,
        )
        rc = device.repeater_resistance(size) * device.repeater_input_capacitance(size)
        assert rc == pytest.approx(
            device.output_resistance * device.input_capacitance, rel=1e-9
        )
