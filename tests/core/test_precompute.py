"""Precompute cache tests: correctness of reuse, LRU bounds, counters.

The cache must be an invisible optimization — cached results equal
fresh ones — and its observables (hit/miss counters, entry counts,
Davis-cache configuration) must report what actually happened.
"""

import pickle

import numpy as np
import pytest

from repro.core.precompute import PrecomputeCache, fingerprint
from repro.core.rank import compute_rank
from repro.core.scenarios import (
    baseline_problem,
    configure_davis_cache,
    davis_cache_info,
)

GATES = 50_000
OPTIONS = dict(bunch_size=2_000, repeater_units=64)


@pytest.fixture
def problem():
    return baseline_problem("130nm", GATES)


class TestFingerprint:
    def test_equal_values_share_fingerprint(self, problem):
        other = baseline_problem("130nm", GATES)
        assert fingerprint(problem) == fingerprint(other)

    def test_different_values_differ(self, problem):
        other = problem.with_clock_frequency(problem.clock_frequency * 2)
        assert fingerprint(problem) != fingerprint(other)

    def test_numpy_payloads_fingerprint_by_value(self):
        a = np.arange(10, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())


class TestCachedResults:
    def test_cached_tables_identical_to_fresh(self, problem):
        cache = PrecomputeCache()
        fresh_tables, fresh_bound = problem.tables(bunch_size=2_000)
        cached_tables, cached_bound = cache.tables(problem, bunch_size=2_000)
        again_tables, again_bound = cache.tables(problem, bunch_size=2_000)
        assert cached_bound == fresh_bound == again_bound
        assert again_tables is cached_tables  # the hit returns the entry
        np.testing.assert_array_equal(
            cached_tables.lengths_m, fresh_tables.lengths_m
        )
        np.testing.assert_array_equal(
            cached_tables.counts, fresh_tables.counts
        )

    def test_compute_rank_unchanged_by_cache(self, problem):
        cache = PrecomputeCache()
        plain = compute_rank(problem, **OPTIONS)
        first = compute_rank(problem, cache=cache, **OPTIONS)
        second = compute_rank(problem, cache=cache, **OPTIONS)
        assert plain.rank == first.rank == second.rank
        assert plain.normalized == first.normalized == second.normalized
        hits = cache.stats()["hits"]
        assert hits["tables"] == 1  # second call reused the tables

    def test_wld_key_shared_across_clock_variants(self, problem):
        cache = PrecomputeCache()
        cache.warm(problem, bunch_size=2_000)
        for scale in (1.0, 1.5, 2.0):
            variant = problem.with_clock_frequency(
                problem.clock_frequency * scale
            )
            compute_rank(variant, cache=cache, **OPTIONS)
        stats = cache.stats()
        # One coarsening miss (the warm); every variant hit it.
        assert stats["misses"]["coarsened"] == 1
        assert stats["hits"]["coarsened"] == 3
        # Tables differ per variant: three misses, no hits.
        assert stats["misses"]["tables"] == 3


class TestLRU:
    def test_eviction_respects_max_entries(self, problem):
        cache = PrecomputeCache(max_entries=2)
        for bunch in (1_000, 2_000, 4_000):
            cache.coarsened(problem, bunch_size=bunch)
        stats = cache.stats()
        assert stats["entries"]["current"] == 2
        # Oldest entry evicted: re-requesting it misses again.
        cache.coarsened(problem, bunch_size=1_000)
        assert cache.stats()["misses"]["coarsened"] == 4

    def test_zero_entries_disables_storage(self, problem):
        cache = PrecomputeCache(max_entries=0)
        cache.coarsened(problem, bunch_size=2_000)
        cache.coarsened(problem, bunch_size=2_000)
        stats = cache.stats()
        assert stats["entries"]["current"] == 0
        assert stats["hits"]["coarsened"] == 0
        assert stats["misses"]["coarsened"] == 2

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            PrecomputeCache(max_entries=-1)

    def test_clear_resets_everything(self, problem):
        cache = PrecomputeCache()
        cache.coarsened(problem, bunch_size=2_000)
        cache.coarsened(problem, bunch_size=2_000)
        cache.clear()
        stats = cache.stats()
        assert stats["entries"]["current"] == 0
        assert stats["hits"]["coarsened"] == 0
        assert stats["misses"]["coarsened"] == 0


class TestPicklability:
    def test_warm_cache_round_trips(self, problem):
        cache = PrecomputeCache().warm(problem, bunch_size=2_000)
        clone = pickle.loads(pickle.dumps(cache))
        clone.coarsened(problem, bunch_size=2_000)
        assert clone.stats()["hits"]["coarsened"] == 1


class TestDavisCacheConfig:
    def test_configure_resets_counters(self):
        configure_davis_cache(8)
        try:
            info = davis_cache_info()
            assert info.hits == 0 and info.misses == 0
            assert info.maxsize == 8
            baseline_problem("130nm", GATES)
            baseline_problem("130nm", GATES)
            info = davis_cache_info()
            assert info.misses == 1
            assert info.hits == 1
        finally:
            configure_davis_cache(16)

    def test_zero_disables_caching(self):
        configure_davis_cache(0)
        try:
            baseline_problem("130nm", GATES)
            baseline_problem("130nm", GATES)
            info = davis_cache_info()
            assert info.hits == 0
            assert info.misses == 2
        finally:
            configure_davis_cache(16)
