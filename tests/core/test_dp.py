"""Tests for the optimized DP solver."""

import pytest

from repro.core.dp import solve_rank_dp
from repro.core.rank import compute_rank

from ..conftest import make_tiny_problem


class TestBasicBehaviour:
    def test_tiny_problem_solves(self, tiny_problem):
        result = compute_rank(tiny_problem, solver="dp")
        assert result.fits
        assert 0 <= result.rank <= tiny_problem.wld.total_wires

    def test_stats_populated(self, tiny_problem):
        result = compute_rank(tiny_problem, solver="dp")
        assert result.stats.solver == "dp"
        assert result.stats.states_explored > 0
        assert result.stats.runtime_seconds > 0

    def test_deterministic(self, tiny_problem):
        a = compute_rank(tiny_problem, solver="dp")
        b = compute_rank(tiny_problem, solver="dp")
        assert a.rank == b.rank

    def test_definition3_rank_zero_when_unfittable(self, node130):
        """A WLD that cannot fit at all has rank 0 (Definition 3)."""
        problem = make_tiny_problem(
            node130,
            [2000] * 8,  # eight die-crossing wires on a tiny die
            gate_count=1000,
            repeater_fraction=0.05,
        )
        result = compute_rank(problem, solver="dp")
        assert not result.fits
        assert result.rank == 0


class TestBudgetMonotonicity:
    def test_rank_monotone_in_repeater_fraction(self, node130):
        """More budget never reduces rank on a fixed WLD/arch — note the
        die also inflates (Eq. 6), so we check the end-to-end trend on a
        budget-bound instance."""
        ranks = []
        for fraction in (0.05, 0.15, 0.3, 0.45):
            problem = make_tiny_problem(
                node130,
                list(range(200, 360, 10)),
                gate_count=20_000,
                repeater_fraction=fraction,
            )
            ranks.append(compute_rank(problem, solver="dp").rank)
        assert ranks == sorted(ranks)

    def test_rank_monotone_in_units_resolution(self, tiny_problem):
        """Finer budget cells can only reduce conservative rounding."""
        coarse = compute_rank(tiny_problem, solver="dp", repeater_units=4)
        fine = compute_rank(tiny_problem, solver="dp", repeater_units=4096)
        assert fine.rank >= coarse.rank


class TestClockMonotonicity:
    def test_rank_non_increasing_in_frequency(self, node130):
        ranks = []
        for frequency in (3e8, 5e8, 8e8, 1.2e9, 2e9):
            problem = make_tiny_problem(
                node130,
                [1500, 900, 500, 250, 120, 60, 30, 10],
                clock_frequency=frequency,
            )
            ranks.append(compute_rank(problem, solver="dp").rank)
        assert ranks == sorted(ranks, reverse=True)


class TestWitness:
    def test_witness_structure(self, tiny_problem):
        result = compute_rank(tiny_problem, solver="dp", collect_witness=True)
        if result.rank == 0:
            pytest.skip("no witness for rank 0")
        witness = result.witness
        assert witness is not None
        # segments cover pairs in increasing order and groups contiguously
        cursor = 0
        for segment in witness:
            assert segment.start_group == cursor
            assert segment.end_group >= segment.start_group
            cursor = segment.end_group
        # total wires in witness equals the rank
        tables, _ = tiny_problem.tables()
        covered = int(tables.cum_wires[cursor])
        assert covered == result.rank

    def test_witness_budget_within_limit(self, tiny_problem):
        result = compute_rank(
            tiny_problem, solver="dp", repeater_units=64, collect_witness=True
        )
        if result.witness is None:
            pytest.skip("no witness")
        assert sum(s.repeater_cells for s in result.witness) <= 64

    def test_witness_physically_feasible(self, tiny_problem):
        """Re-simulate the witness against the raw tables."""
        result = compute_rank(tiny_problem, solver="dp", collect_witness=True)
        if result.witness is None:
            pytest.skip("no witness")
        tables, _ = tiny_problem.tables()
        wires_above = 0
        reps_above = 0.0
        rep_area = 0.0
        for segment in result.witness:
            pair = segment.pair
            capacity = tables.capacity(pair, wires_above, reps_above)
            area = float(
                tables.cum_wire_area[pair][segment.end_group]
                - tables.cum_wire_area[pair][segment.start_group]
            )
            assert area <= capacity * (1 + 1e-9)
            rep_area += float(
                tables.cum_rep_area[pair][segment.end_group]
                - tables.cum_rep_area[pair][segment.start_group]
            )
            wires_above = int(tables.cum_wires[segment.end_group])
            reps_above += segment.repeaters
        assert rep_area <= tables.repeater_budget_area * (1 + 1e-9)


class TestRawSolver:
    def test_solve_rank_dp_direct(self, tiny_problem):
        tables, _ = tiny_problem.tables()
        raw = solve_rank_dp(tables, repeater_units=64)
        via_api = compute_rank(tiny_problem, solver="dp", repeater_units=64)
        assert raw.rank == via_api.rank
        assert raw.fits == via_api.fits
