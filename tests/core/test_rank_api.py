"""Tests for the public compute_rank API and RankResult."""

import pytest

from repro.core.rank import SOLVERS, compute_rank
from repro.errors import RankComputationError


class TestComputeRank:
    def test_unknown_solver_rejected(self, tiny_problem):
        with pytest.raises(RankComputationError, match="unknown solver"):
            compute_rank(tiny_problem, solver="magic")

    def test_all_solvers_registered(self):
        assert set(SOLVERS) == {"dp", "greedy", "reference", "exhaustive"}

    def test_normalized_rank(self, tiny_problem):
        result = compute_rank(tiny_problem)
        assert result.normalized == pytest.approx(
            result.rank / tiny_problem.wld.total_wires
        )

    def test_total_wires_is_original(self, small_baseline):
        """Normalization uses the uncoarsened wire count."""
        result = compute_rank(small_baseline, bunch_size=1000)
        assert result.total_wires == small_baseline.wld.total_wires

    def test_error_bound_from_bunching(self, small_baseline):
        result = compute_rank(small_baseline, bunch_size=500)
        assert 0 < result.error_bound <= 500

    def test_summary_mentions_key_facts(self, tiny_problem):
        result = compute_rank(tiny_problem)
        text = result.summary()
        assert str(result.rank) in text
        assert "dp" in text

    def test_summary_flags_nonfitting(self, node130):
        from ..conftest import make_tiny_problem

        problem = make_tiny_problem(
            node130, [2000] * 8, gate_count=1000, repeater_fraction=0.05
        )
        result = compute_rank(problem)
        assert "DOES NOT FIT" in result.summary()

    def test_witness_none_by_default(self, tiny_problem):
        assert compute_rank(tiny_problem).witness is None

    def test_result_frozen(self, tiny_problem):
        result = compute_rank(tiny_problem)
        with pytest.raises(Exception):
            result.rank = 0


class TestCoarseningOptions:
    def test_bunch_and_bin_compose(self, small_baseline):
        result = compute_rank(small_baseline, bunch_size=2000, max_groups=40)
        assert result.fits
        assert result.error_bound <= 2000

    def test_coarse_and_fine_close(self, small_baseline):
        fine = compute_rank(small_baseline, bunch_size=500)
        coarse = compute_rank(small_baseline, bunch_size=5000)
        assert abs(fine.rank - coarse.rank) <= fine.error_bound + coarse.error_bound
