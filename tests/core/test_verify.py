"""Tests for independent witness verification."""

import dataclasses

import pytest

from repro.core.dp import WitnessSegment
from repro.core.rank import compute_rank
from repro.core.verify import verify_witness
from repro.errors import RankComputationError

from ..conftest import make_tiny_problem


@pytest.fixture(scope="module")
def verified(node130):
    problem = make_tiny_problem(
        node130,
        list(range(100, 1600, 100)),
        gate_count=20_000,
        repeater_fraction=0.3,
    )
    result = compute_rank(problem, collect_witness=True, repeater_units=128)
    tables, _ = problem.tables()
    return problem, tables, result


class TestAcceptsValidWitness:
    def test_solver_output_verifies(self, verified):
        _, tables, result = verified
        verify_witness(tables, result)  # must not raise

    def test_baseline_scale_verifies(self, small_baseline):
        result = compute_rank(
            small_baseline, bunch_size=2000, repeater_units=256,
            collect_witness=True,
        )
        tables, _ = small_baseline.tables(bunch_size=2000)
        verify_witness(tables, result)


class TestRejectsTampering:
    def _tamper(self, result, witness):
        return dataclasses.replace(result, witness=tuple(witness))

    def test_missing_witness(self, verified):
        _, tables, result = verified
        bare = dataclasses.replace(result, witness=None)
        with pytest.raises(RankComputationError, match="no witness"):
            verify_witness(tables, bare)

    def test_inflated_rank_claim(self, verified):
        _, tables, result = verified
        inflated = dataclasses.replace(result, rank=result.rank + 1)
        with pytest.raises(RankComputationError, match="claims rank"):
            verify_witness(tables, inflated)

    def test_non_contiguous_groups(self, verified):
        _, tables, result = verified
        witness = list(result.witness)
        tampered = [
            dataclasses.replace(witness[-1], start_group=witness[-1].start_group + 1)
        ]
        bad = self._tamper(result, witness[:-1] + tampered)
        with pytest.raises(RankComputationError):
            verify_witness(tables, bad)

    def test_pair_order_violation(self, verified):
        _, tables, result = verified
        witness = list(result.witness)
        if len(witness) < 2:
            pytest.skip("need two segments to swap")
        swapped = [witness[1], witness[0]] + witness[2:]
        # re-anchor start groups so only the pair order is wrong
        with pytest.raises(RankComputationError):
            verify_witness(tables, self._tamper(result, swapped))

    def test_overstuffed_pair(self, small_baseline):
        """Claiming the whole 300k-wire WLD meets delay inside the top
        pair must fail the capacity (or budget) check."""
        result = compute_rank(
            small_baseline, bunch_size=2000, repeater_units=128,
            collect_witness=True,
        )
        tables, _ = small_baseline.tables(bunch_size=2000)
        fake = dataclasses.replace(
            result,
            rank=tables.total_wires,
            witness=(
                WitnessSegment(
                    pair=0,
                    start_group=0,
                    end_group=tables.num_groups,
                    repeater_cells=0,
                    repeaters=0,
                ),
            ),
        )
        with pytest.raises(RankComputationError):
            verify_witness(tables, fake)
