"""Tests for the paper scenario builders."""

import pytest

from repro.core.scenarios import (
    BASELINE_CLOCK_HZ,
    BASELINE_MILLER,
    BASELINE_PERMITTIVITY,
    BASELINE_REPEATER_FRACTION,
    baseline_problem,
    paper_baseline_130nm,
)
from repro.errors import ConfigurationError
from repro.wld.synthetic import wld_from_pairs


class TestBaselineProblem:
    def test_table2_defaults(self):
        problem = baseline_problem("130nm", 50_000)
        assert problem.clock_frequency == pytest.approx(BASELINE_CLOCK_HZ)
        assert problem.die.repeater_fraction == pytest.approx(
            BASELINE_REPEATER_FRACTION
        )
        counts = problem.arch.tier_counts()
        assert counts == {"global": 1, "semi_global": 2, "local": 1}

    def test_baseline_constants_match_table2(self):
        assert BASELINE_PERMITTIVITY == pytest.approx(3.9)
        assert BASELINE_MILLER == pytest.approx(2.0)
        assert BASELINE_CLOCK_HZ == pytest.approx(500e6)

    def test_custom_wld_skips_davis(self):
        wld = wld_from_pairs([(10.0, 5)])
        problem = baseline_problem("130nm", 50_000, wld=wld)
        assert problem.wld is wld

    def test_davis_wld_cached(self):
        a = baseline_problem("130nm", 50_000)
        b = baseline_problem("130nm", 50_000)
        assert a.wld is b.wld

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            baseline_problem("65nm", 1000)

    def test_overrides(self):
        problem = baseline_problem(
            "90nm",
            50_000,
            clock_frequency=1e9,
            miller_factor=1.5,
            permittivity=2.8,
            repeater_fraction=0.25,
        )
        assert problem.clock_frequency == pytest.approx(1e9)
        assert problem.die.repeater_fraction == pytest.approx(0.25)
        assert "k=2.8" in problem.arch.name
        assert "M=1.5" in problem.arch.name


class TestPaperBaseline:
    def test_is_1m_gates_130nm(self):
        problem = paper_baseline_130nm()
        assert problem.die.gate_count == 1_000_000
        assert problem.die.node.name == "130nm"

    def test_paper_wld_wire_count(self):
        """The identity check: 2,988,057 wires (see test_davis)."""
        assert paper_baseline_130nm().wld.total_wires == 2_988_057

    def test_override_forwarding(self):
        problem = paper_baseline_130nm(clock_frequency=1.1e9)
        assert problem.clock_frequency == pytest.approx(1.1e9)
