"""Cross-cutting solver invariants (property-style).

These encode facts that must hold for *any* correct rank solver, beyond
agreement with the oracles: resource monotonicity, normalization
bounds, and the architecture-extension dominance argument.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ArchitectureSpec, build_architecture, compute_rank
from repro.core.scenarios import baseline_problem

from ..conftest import make_tiny_problem

FAST = dict(bunch_size=2000, repeater_units=128)


class TestResourceMonotonicity:
    def test_utilization_monotone(self, small_baseline):
        """More usable routing area never lowers rank."""
        ranks = []
        for utilization in (0.5, 0.75, 1.0):
            problem = dataclasses.replace(small_baseline, utilization=utilization)
            ranks.append(compute_rank(problem, **FAST).rank)
        assert ranks == sorted(ranks)

    def test_pair_capacity_factor_monotone(self, small_baseline):
        ranks = []
        for factor in (1.0, 1.5, 2.0):
            problem = dataclasses.replace(
                small_baseline, pair_capacity_factor=factor
            )
            ranks.append(compute_rank(problem, **FAST).rank)
        assert ranks == sorted(ranks)

    def test_extra_local_pair_never_hurts(self, small_baseline):
        """An extra bottom pair only adds capacity (it can stay empty)."""
        base = compute_rank(small_baseline, **FAST)
        spec = ArchitectureSpec(node=small_baseline.die.node, local_pairs=2)
        extended = small_baseline.with_arch(build_architecture(spec))
        assert compute_rank(extended, **FAST).rank >= base.rank

    def test_vias_per_wire_monotone(self, small_baseline):
        """Fatter via blockage never raises rank."""
        ranks = []
        for vias in (2, 4, 8):
            problem = dataclasses.replace(small_baseline, vias_per_wire=vias)
            ranks.append(compute_rank(problem, **FAST).rank)
        assert ranks == sorted(ranks, reverse=True)


class TestNormalizationBounds:
    @settings(max_examples=15, deadline=None)
    @given(
        lengths=st.sets(
            st.integers(min_value=2, max_value=1500), min_size=1, max_size=6
        ),
        fraction=st.sampled_from([0.05, 0.25, 0.45]),
    )
    def test_rank_bounded_by_total(self, node130, lengths, fraction):
        problem = make_tiny_problem(
            node130, sorted(lengths, reverse=True), repeater_fraction=fraction
        )
        result = compute_rank(problem, repeater_units=32)
        assert 0 <= result.rank <= problem.wld.total_wires
        assert 0.0 <= result.normalized <= 1.0
        if not result.fits:
            assert result.rank == 0

    @settings(max_examples=10, deadline=None)
    @given(
        lengths=st.sets(
            st.integers(min_value=2, max_value=1500), min_size=2, max_size=6
        )
    )
    def test_prefix_property(self, node130, lengths):
        """If rank = k, solving the k-wire sub-problem of the longest
        wires cannot do worse (its constraints are a subset)."""
        problem = make_tiny_problem(node130, sorted(lengths, reverse=True))
        result = compute_rank(problem, repeater_units=32)
        if 0 < result.rank < problem.wld.total_wires:
            sub = dataclasses.replace(
                problem, wld=problem.wld.prefix(result.rank)
            )
            sub_result = compute_rank(sub, repeater_units=32)
            assert sub_result.rank >= result.rank


class TestSolverConsistency:
    def test_dp_at_least_greedy_baseline_scale(self, small_baseline):
        dp = compute_rank(small_baseline, solver="dp", **FAST)
        greedy = compute_rank(small_baseline, solver="greedy", bunch_size=2000)
        assert dp.rank >= greedy.rank

    def test_rank_independent_of_witness_collection(self, small_baseline):
        plain = compute_rank(small_baseline, **FAST)
        witnessed = compute_rank(small_baseline, collect_witness=True, **FAST)
        assert plain.rank == witnessed.rank
