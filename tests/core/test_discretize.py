"""Tests for the shared repeater-area discretization."""

import math

import numpy as np
import pytest

from repro.core.discretize import discretize_repeaters
from repro.errors import RankComputationError

from ..conftest import make_tiny_problem


@pytest.fixture
def tables(node130):
    problem = make_tiny_problem(node130, [1200, 700, 300, 90, 25])
    return problem.tables()[0]


class TestBasics:
    def test_unit_area(self, tables):
        disc = discretize_repeaters(tables, 100)
        assert disc.unit_area == pytest.approx(tables.repeater_budget_area / 100)
        assert disc.num_units == 100

    def test_invalid_units_rejected(self, tables):
        with pytest.raises(RankComputationError):
            discretize_repeaters(tables, 0)

    def test_zero_budget(self, node130):
        problem = make_tiny_problem(node130, [100.0], repeater_fraction=0.0)
        tables = problem.tables()[0]
        disc = discretize_repeaters(tables, 64)
        assert disc.num_units == 0
        assert math.isinf(disc.unit_area)
        assert disc.area_to_units(1e-15) == math.inf
        assert disc.area_to_units(0.0) == 0.0


class TestAreaToUnits:
    def test_exact_multiple_no_roundup(self, tables):
        disc = discretize_repeaters(tables, 64)
        assert disc.area_to_units(disc.unit_area * 3) == 3

    def test_ceil(self, tables):
        disc = discretize_repeaters(tables, 64)
        assert disc.area_to_units(disc.unit_area * 3.01) == 4

    def test_zero_area_free(self, tables):
        disc = discretize_repeaters(tables, 64)
        assert disc.area_to_units(0.0) == 0.0


class TestSliceUnits:
    def test_slice_matches_area(self, tables):
        disc = discretize_repeaters(tables, 64)
        for pair in range(tables.num_pairs):
            for b in range(tables.num_groups):
                for e in range(b, tables.num_groups + 1):
                    area = float(
                        tables.cum_rep_area[pair][e] - tables.cum_rep_area[pair][b]
                    )
                    units = disc.slice_units(pair, b, e)
                    if math.isinf(area) or math.isnan(area):
                        assert math.isinf(units)
                    else:
                        assert units == disc.area_to_units(area)

    def test_batch_matches_scalar(self, tables):
        disc = discretize_repeaters(tables, 64)
        ends = np.arange(0, tables.num_groups + 1)
        for pair in range(tables.num_pairs):
            batch = disc.slice_units_batch(pair, 0, ends)
            for i, e in enumerate(ends):
                assert batch[i] == disc.slice_units(pair, 0, int(e))

    def test_empty_slice_free(self, tables):
        disc = discretize_repeaters(tables, 64)
        assert disc.slice_units(0, 2, 2) == 0.0

    def test_per_slice_rounding_cheaper_than_per_group(self, tables):
        """The whole point of slice-level rounding: one ceil per block,
        not one per group."""
        disc = discretize_repeaters(tables, 1000)
        pair = tables.num_pairs - 1
        whole = disc.slice_units(pair, 0, tables.num_groups)
        per_group = sum(
            disc.slice_units(pair, g, g + 1) for g in range(tables.num_groups)
        )
        assert whole <= per_group

    def test_infeasible_slice_is_inf(self, node130):
        problem = make_tiny_problem(node130, [1500, 1], clock_frequency=3e9)
        tables = problem.tables()[0]
        disc = discretize_repeaters(tables, 64)
        # shortest group infeasible at 3 GHz on every pair
        assert (tables.stages[:, -1] == -1).all()
        assert math.isinf(disc.slice_units(0, 0, tables.num_groups))
