"""Tests for RankProblem."""

import pytest

from repro.core.problem import RankProblem
from repro.delay.target import LinearTargetModel, QuadraticTargetModel
from repro.errors import RankComputationError
from repro.wld.distribution import WireLengthDistribution

from ..conftest import make_tiny_problem


class TestValidation:
    def test_invalid_clock(self, tiny_problem):
        with pytest.raises(RankComputationError):
            tiny_problem.with_clock_frequency(0.0)

    def test_invalid_target_kind(self, tiny_problem):
        with pytest.raises(RankComputationError):
            tiny_problem.with_target_kind("cubic")

    def test_empty_wld_rejected(self, tiny_problem):
        with pytest.raises((RankComputationError, Exception)):
            RankProblem(
                arch=tiny_problem.arch,
                die=tiny_problem.die,
                wld=WireLengthDistribution.empty(),
                clock_frequency=5e8,
            )

    def test_invalid_utilization(self, node130):
        with pytest.raises(RankComputationError):
            make_tiny_problem(node130, [10.0], utilization=1.5)


class TestTargetModel:
    def test_linear_default(self, tiny_problem):
        model = tiny_problem.target_model()
        assert isinstance(model, LinearTargetModel)
        assert model.clock_frequency == tiny_problem.clock_frequency

    def test_quadratic_option(self, tiny_problem):
        model = tiny_problem.with_target_kind("quadratic").target_model()
        assert isinstance(model, QuadraticTargetModel)

    def test_lmax_is_physical_longest_wire(self, tiny_problem):
        model = tiny_problem.target_model()
        assert model.max_length == pytest.approx(
            tiny_problem.die.wire_length(tiny_problem.wld.max_length)
        )


class TestTables:
    def test_tables_roundtrip(self, tiny_problem):
        tables, bound = tiny_problem.tables()
        assert tables.num_pairs == tiny_problem.arch.num_pairs
        assert tables.total_wires == tiny_problem.wld.total_wires
        assert bound == 1  # unit counts

    def test_coarsening_keeps_lmax_scale(self, small_baseline):
        """Bunched tables must use the original WLD's l_max for targets."""
        fine, _ = small_baseline.tables()
        coarse, _ = small_baseline.tables(bunch_size=1000)
        assert fine.targets[0] == pytest.approx(coarse.targets[0])

    def test_bunch_error_bound_reported(self, small_baseline):
        _, bound = small_baseline.tables(bunch_size=1234)
        assert 0 < bound <= 1234

    def test_binning_reduces_groups(self, small_baseline):
        fine, _ = small_baseline.tables()
        binned, _ = small_baseline.tables(max_groups=50)
        assert binned.num_groups <= 50 < fine.num_groups


class TestSweepKnobs:
    def test_with_clock(self, tiny_problem):
        changed = tiny_problem.with_clock_frequency(1e9)
        assert changed.clock_frequency == pytest.approx(1e9)
        assert tiny_problem.clock_frequency == pytest.approx(5e8)

    def test_with_repeater_fraction_inflates_die(self, tiny_problem):
        changed = tiny_problem.with_repeater_fraction(0.5)
        assert changed.die.die_area > tiny_problem.die.die_area
        assert changed.die.repeater_fraction == pytest.approx(0.5)

    def test_with_arch(self, tiny_problem, arch130):
        changed = tiny_problem.with_arch(arch130)
        assert changed.arch is arch130

    def test_frozen(self, tiny_problem):
        with pytest.raises(Exception):
            tiny_problem.clock_frequency = 1e9
