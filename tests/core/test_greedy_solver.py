"""Tests for the greedy baseline and the Figure 2 counterexample (E6)."""

import pytest

from repro import (
    ArchitectureSpec,
    DieModel,
    RankProblem,
    build_architecture,
    compute_rank,
)
from repro.delay.repeater import optimal_repeater_size
from repro.wld.synthetic import wld_from_pairs

from ..conftest import make_tiny_problem


def figure2_problem(node130, budget_stage_multiple=2.2):
    """The paper's Figure 2 instance shape: four (near-)equal wires, two
    layer-pairs, the top pair's repeaters far more expensive, and a
    repeater budget sized to ``budget_stage_multiple`` top-pair stages.

    Greedy fills the top pair and burns the budget at the expensive
    rate; the optimum puts everything on the bottom pair.
    """
    arch = build_architecture(
        ArchitectureSpec(
            node=node130, local_pairs=1, semi_global_pairs=0, global_pairs=1
        )
    )
    device = node130.device
    s_top = optimal_repeater_size(arch.pair(0).rc, device)
    gates = 1000
    target_budget = budget_stage_multiple * s_top * device.min_inverter_area
    gate_area = node130.gate_pitch ** 2 * gates
    fraction = target_budget / (target_budget + gate_area)
    die = DieModel(node=node130, gate_count=gates, repeater_fraction=fraction)
    wld = wld_from_pairs([(100.0, 1), (99.0, 1), (98.0, 1), (97.0, 1)])
    return RankProblem(arch=arch, die=die, wld=wld, clock_frequency=5e8)


class TestFigure2:
    def test_greedy_rank_2_optimal_rank_4(self, node130):
        """The paper's exact headline: greedy 2 vs optimal 4."""
        problem = figure2_problem(node130, budget_stage_multiple=2.2)
        greedy = compute_rank(problem, solver="greedy")
        optimal = compute_rank(problem, solver="dp", repeater_units=256)
        assert greedy.rank == 2
        assert optimal.rank == 4

    def test_exhaustive_confirms_optimum(self, node130):
        problem = figure2_problem(node130)
        optimal = compute_rank(problem, solver="dp", repeater_units=256)
        brute = compute_rank(problem, solver="exhaustive", repeater_units=256)
        assert brute.rank == optimal.rank == 4

    def test_gap_scales_with_budget(self, node130):
        """With a one-stage budget greedy drops to 1; optimum keeps 4
        while the budget still covers four cheap stages."""
        problem = figure2_problem(node130, budget_stage_multiple=1.4)
        greedy = compute_rank(problem, solver="greedy")
        optimal = compute_rank(problem, solver="dp", repeater_units=256)
        assert greedy.rank == 1
        assert optimal.rank == 4


class TestGreedyGeneralBehaviour:
    def test_never_beats_dp(self, node130):
        """Greedy is a lower bound on the optimum (spot-check grid)."""
        for lengths in (
            [1200, 700, 300, 90, 25],
            [500, 400, 300, 200, 100, 50],
            list(range(40, 400, 40)),
        ):
            for fraction in (0.05, 0.2, 0.4):
                problem = make_tiny_problem(
                    node130, lengths, repeater_fraction=fraction
                )
                greedy = compute_rank(problem, solver="greedy")
                optimal = compute_rank(
                    problem, solver="dp", repeater_units=4096
                )
                assert optimal.rank >= greedy.rank

    def test_fits_flag(self, tiny_problem):
        result = compute_rank(tiny_problem, solver="greedy")
        assert result.fits

    def test_unfittable_gives_rank_zero(self, node130):
        problem = make_tiny_problem(
            node130, [2000] * 8, gate_count=1000, repeater_fraction=0.05
        )
        result = compute_rank(problem, solver="greedy")
        assert not result.fits
        assert result.rank == 0

    def test_stats(self, tiny_problem):
        result = compute_rank(tiny_problem, solver="greedy")
        assert result.stats.solver == "greedy"
