"""Cross-validation: DP == reference == exhaustive on small instances.

The three solvers share semantics but not implementation (vectorized
prefix-sum DP vs wire-at-a-time incremental-insertion DP vs brute force
over all monotone partitions).  Exact agreement on randomized instances
is the core correctness evidence for the rank computation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_rank

from ..conftest import make_tiny_problem


def solve_all(problem, units):
    dp = compute_rank(problem, solver="dp", repeater_units=units, backend="numpy")
    dp_py = compute_rank(
        problem, solver="dp", repeater_units=units, backend="python"
    )
    assert dp.rank == dp_py.rank and dp.fits == dp_py.fits
    ref = compute_rank(problem, solver="reference", repeater_units=units)
    exh = compute_rank(problem, solver="exhaustive", repeater_units=units)
    return dp, ref, exh


class TestHandPicked:
    @pytest.mark.parametrize(
        "lengths,fraction,clock",
        [
            ([1200, 700, 300, 90, 25], 0.2, 5e8),
            ([1500, 1400, 1300], 0.05, 1e9),
            ([100, 90, 80, 70, 60, 50], 0.4, 5e8),
            ([2000, 50, 40, 30, 2, 1], 0.3, 5e8),
            ([640, 320, 160, 80, 40, 20, 10], 0.1, 2e9),
            ([33], 0.2, 5e8),
        ],
    )
    def test_agreement(self, node130, lengths, fraction, clock):
        problem = make_tiny_problem(
            node130,
            lengths,
            repeater_fraction=fraction,
            clock_frequency=clock,
        )
        dp, ref, exh = solve_all(problem, units=32)
        assert dp.rank == ref.rank == exh.rank
        assert dp.fits == ref.fits == exh.fits

    def test_zero_budget_agreement(self, node130):
        problem = make_tiny_problem(
            node130, [900, 500, 100], repeater_fraction=0.0
        )
        dp, ref, exh = solve_all(problem, units=8)
        assert dp.rank == ref.rank == exh.rank

    def test_three_pair_architecture(self, node130):
        problem = make_tiny_problem(
            node130,
            [1100, 800, 400, 200, 100, 40],
            semi_global_pairs=1,
        )
        dp, ref, exh = solve_all(problem, units=16)
        assert dp.rank == ref.rank == exh.rank


class TestRandomized:
    def test_seeded_sweep(self, node130):
        rng = random.Random(2003)
        for _ in range(30):
            n = rng.randint(2, 8)
            lengths = rng.sample(range(5, 2000), n)
            problem = make_tiny_problem(
                node130,
                lengths,
                gate_count=rng.choice([2000, 10_000, 50_000]),
                repeater_fraction=rng.choice([0.02, 0.1, 0.25, 0.45]),
                clock_frequency=rng.choice([2e8, 5e8, 1e9, 3e9]),
                semi_global_pairs=rng.choice([0, 1]),
            )
            units = rng.choice([4, 16, 64])
            dp, ref, exh = solve_all(problem, units)
            assert dp.rank == ref.rank == exh.rank, (
                f"lengths={sorted(lengths, reverse=True)} units={units}"
            )
            assert dp.fits == ref.fits == exh.fits

    @settings(max_examples=25, deadline=None)
    @given(
        lengths=st.sets(
            st.integers(min_value=2, max_value=1800), min_size=1, max_size=6
        ),
        fraction=st.sampled_from([0.03, 0.15, 0.35]),
        clock=st.sampled_from([3e8, 7e8, 1.5e9]),
        units=st.sampled_from([8, 32]),
    )
    def test_agreement_property(self, node130, lengths, fraction, clock, units):
        problem = make_tiny_problem(
            node130,
            sorted(lengths, reverse=True),
            repeater_fraction=fraction,
            clock_frequency=clock,
        )
        dp, ref, exh = solve_all(problem, units)
        assert dp.rank == ref.rank == exh.rank
        assert dp.fits == ref.fits == exh.fits


class TestGroupGranularityConsistency:
    def test_bunched_rank_within_error_bound(self, node130):
        """Rank at group granularity deviates from wire granularity by
        at most the max bunch size (paper Section 5.1)."""
        lengths = [(float(l), 12) for l in (900, 700, 500, 300, 200, 100)]
        from repro.wld.synthetic import wld_from_pairs
        from repro import RankProblem, DieModel, ArchitectureSpec, build_architecture

        arch = build_architecture(
            ArchitectureSpec(node=node130, local_pairs=1, semi_global_pairs=0, global_pairs=1)
        )
        die = DieModel(node=node130, gate_count=50_000, repeater_fraction=0.2)
        problem = RankProblem(
            arch=arch, die=die, wld=wld_from_pairs(lengths), clock_frequency=5e8
        )
        fine = compute_rank(problem, solver="dp", bunch_size=1, repeater_units=2048)
        coarse = compute_rank(problem, solver="dp", bunch_size=4, repeater_units=2048)
        assert abs(fine.rank - coarse.rank) <= 4
