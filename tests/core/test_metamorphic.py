"""Metamorphic properties of the rank metric.

Each test perturbs a problem along one axis with a *known* effect on
the output — input-order invariance, knob monotonicity, solver
equivalence — so a regression shows up as a broken relation between two
runs rather than a drifted absolute number.  Relations, unlike golden
values, survive refactors of the solver internals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_rank
from repro.wld.synthetic import wld_from_pairs

from ..conftest import make_tiny_problem

#: Small-but-nontrivial length pools for tiny problems.
_lengths = st.sets(
    st.integers(min_value=2, max_value=1500), min_size=2, max_size=6
)


def _tiny(node, lengths, **kwargs):
    return make_tiny_problem(node, lengths, **kwargs)


class TestPermutationInvariance:
    @settings(max_examples=15, deadline=None)
    @given(lengths=_lengths, data=st.data())
    def test_rank_ignores_wld_input_order(self, node130, lengths, data):
        """The WLD is a distribution: feeding the same (length, count)
        pairs in any order must yield the identical rank."""
        ordered = sorted(lengths, reverse=True)
        shuffled = data.draw(st.permutations(ordered))
        base = _tiny(node130, ordered)
        permuted = _tiny(node130, shuffled)
        r0 = compute_rank(base, repeater_units=32)
        r1 = compute_rank(permuted, repeater_units=32)
        assert r0.rank == r1.rank
        assert r0.fits == r1.fits

    def test_duplicate_pairs_aggregate(self, node130):
        """Split counts merge: [(L, 2)] == [(L, 1), (L, 1)]."""
        merged = wld_from_pairs([(400.0, 2), (50.0, 1)])
        split = wld_from_pairs([(400.0, 1), (50.0, 1), (400.0, 1)])
        assert merged.total_wires == split.total_wires
        base = _tiny(node130, [400, 50])
        import dataclasses

        a = compute_rank(dataclasses.replace(base, wld=merged), repeater_units=32)
        b = compute_rank(dataclasses.replace(base, wld=split), repeater_units=32)
        assert a.rank == b.rank


class TestKnobMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(lengths=_lengths)
    def test_rank_monotone_in_repeater_fraction(self, node130, lengths):
        """More repeater area never lowers rank (budget only adds
        options; Table 4's R column is monotone for the same reason)."""
        problem = _tiny(node130, sorted(lengths, reverse=True))
        ranks = [
            compute_rank(
                problem.with_repeater_fraction(fraction), repeater_units=32
            ).rank
            for fraction in (0.05, 0.2, 0.4)
        ]
        assert ranks == sorted(ranks)

    @settings(max_examples=10, deadline=None)
    @given(lengths=_lengths)
    def test_rank_antitone_in_clock(self, node130, lengths):
        """A faster target clock tightens every delay target, so rank
        is non-increasing in C (Table 4's C column)."""
        problem = _tiny(node130, sorted(lengths, reverse=True))
        ranks = [
            compute_rank(
                problem.with_clock_frequency(clock), repeater_units=32
            ).rank
            for clock in (2.5e8, 5.0e8, 1.0e9)
        ]
        assert ranks == sorted(ranks, reverse=True)


class TestSolverEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        lengths=_lengths,
        fraction=st.sampled_from([0.1, 0.25, 0.4]),
    )
    def test_dp_matches_reference(self, node130, lengths, fraction):
        """The production DP agrees with the faithful wire-at-a-time
        reference on every tiny random instance (unit group counts, so
        the reference's granularity requirement holds)."""
        problem = _tiny(
            node130, sorted(lengths, reverse=True), repeater_fraction=fraction
        )
        dp = compute_rank(problem, solver="dp", repeater_units=32)
        ref = compute_rank(problem, solver="reference", repeater_units=32)
        assert dp.rank == ref.rank
        assert dp.fits == ref.fits

    @settings(max_examples=10, deadline=None)
    @given(
        lengths=_lengths,
        fraction=st.sampled_from([0.1, 0.25, 0.4]),
    )
    def test_backends_are_one_solver(self, node130, lengths, fraction):
        """The numpy and python DP backends are the *same* solver in
        two implementations: rank, witness, and deterministic counters
        must all coincide (see tests/core/test_backends.py for the full
        parity suite; this pins the relation alongside the other
        metamorphic properties)."""
        problem = _tiny(
            node130, sorted(lengths, reverse=True), repeater_fraction=fraction
        )
        np_res = compute_rank(
            problem, repeater_units=32, collect_witness=True, backend="numpy"
        )
        py_res = compute_rank(
            problem, repeater_units=32, collect_witness=True, backend="python"
        )
        assert np_res.rank == py_res.rank
        assert np_res.witness == py_res.witness
        assert np_res.stats.rows == py_res.stats.rows
        assert np_res.stats.transitions == py_res.stats.transitions
