"""Direct tests of the wire-at-a-time reference solver internals."""

import pytest

from repro.core.discretize import discretize_repeaters
from repro.core.rank import compute_rank
from repro.core.reference import (
    _greedy_pack,
    _incremental_insertion,
    _wire_assign,
    solve_rank_reference,
)
from repro.errors import RankComputationError

from ..conftest import make_tiny_problem


@pytest.fixture
def problem(node130):
    return make_tiny_problem(node130, [1400, 800, 400, 150, 50])


@pytest.fixture
def tables(problem):
    return problem.tables()[0]


class TestGranularityGuard:
    def test_rejects_multiwire_groups(self, node130):
        from repro.wld.synthetic import wld_from_pairs
        from repro import DieModel, RankProblem, ArchitectureSpec, build_architecture

        arch = build_architecture(ArchitectureSpec(node=node130))
        problem = RankProblem(
            arch=arch,
            die=DieModel(node=node130, gate_count=10_000, repeater_fraction=0.2),
            wld=wld_from_pairs([(100.0, 5)]),
            clock_frequency=5e8,
        )
        tables, _ = problem.tables()
        with pytest.raises(RankComputationError, match="one wire per group"):
            solve_rank_reference(tables)


class TestIncrementalInsertion:
    def test_returns_charged_and_inline(self, tables):
        outcome = _incremental_insertion(tables, tables.num_pairs - 1, 0)
        assert outcome is not None
        charged, inline = outcome
        assert charged >= 1
        assert inline == charged - 1

    def test_matches_tables_stage_count(self, tables):
        """The incremental loop and the closed form in the tables must
        agree wire by wire, pair by pair."""
        for pair in range(tables.num_pairs):
            for wire in range(tables.num_groups):
                outcome = _incremental_insertion(tables, pair, wire)
                expected = int(tables.stages[pair][wire])
                if expected < 0:
                    assert outcome is None
                else:
                    assert outcome is not None
                    assert outcome[0] == expected


class TestWireAssignOracle:
    def test_empty_block(self, tables):
        disc = discretize_repeaters(tables, 32)
        outcome = _wire_assign(tables, disc, 0, 0, 0, 0, 0, 32)
        assert outcome == (0, 0, tables.capacity(0, 0, 0))

    def test_budget_refusal(self, tables):
        disc = discretize_repeaters(tables, 32)
        outcome = _wire_assign(tables, disc, 0, 0, 2, 0, 0, 0)
        # two longest wires need stages; zero cells cannot pay
        assert outcome is None


class TestGreedyPackOracle:
    def test_empty_suffix(self, tables):
        assert _greedy_pack(tables, tables.num_groups, 0, 0, 0)

    def test_no_pairs(self, tables):
        assert not _greedy_pack(tables, 0, tables.num_pairs, 0, 0)

    def test_agrees_with_group_packer(self, tables):
        """The per-wire literal port and the group-level packer must
        agree on unit-count tables."""
        from repro.assign.greedy_assign import pack_suffix

        for start in range(tables.num_groups + 1):
            for top in range(tables.num_pairs + 1):
                assert _greedy_pack(tables, start, top, 0, 0) == pack_suffix(
                    tables, start, top, 0, 0
                )


class TestEndToEnd:
    def test_matches_dp(self, problem):
        ref = compute_rank(problem, solver="reference", repeater_units=32)
        dp = compute_rank(problem, solver="dp", repeater_units=32)
        assert ref.rank == dp.rank
        assert ref.stats.solver == "reference"
