"""Backend parity: the numpy DP kernels match the scalar python loop.

The vectorized transition kernels in :mod:`repro.core.dp_numpy` promise
*bit-identical* results to the scalar reference loop — not merely the
same rank, but the same witness, the same feasibility verdict, and the
same deterministic solver counters.  These tests pin that contract on
randomized instances (Hypothesis) and on the degradation paths
(deadlines, bunching, zero budget) where the two implementations could
plausibly diverge.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_rank
from repro.core.dp import BACKENDS, BACKEND_ENV, resolve_backend, solve_rank_dp
from repro.errors import DeadlineExceeded, RankComputationError

from ..conftest import make_tiny_problem


def _pair(problem, units, **options):
    """Solve on both backends with witness collection; return (numpy, python)."""
    np_res = compute_rank(
        problem,
        solver="dp",
        repeater_units=units,
        collect_witness=True,
        backend="numpy",
        **options,
    )
    py_res = compute_rank(
        problem,
        solver="dp",
        repeater_units=units,
        collect_witness=True,
        backend="python",
        **options,
    )
    return np_res, py_res


def _assert_identical(np_res, py_res):
    assert np_res.rank == py_res.rank
    assert np_res.fits == py_res.fits
    assert np_res.normalized == py_res.normalized
    assert np_res.witness == py_res.witness
    # Deterministic counters are backend-invariant by design; the
    # pack_* fields and `backend` are compare=False precisely because
    # they are allowed to differ.
    assert np_res.stats.rows == py_res.stats.rows
    assert np_res.stats.states_explored == py_res.stats.states_explored
    assert np_res.stats.transitions == py_res.stats.transitions
    assert np_res.stats.backend == "numpy"
    assert py_res.stats.backend == "python"


class TestParity:
    @pytest.mark.parametrize(
        "lengths,fraction,clock",
        [
            ([1200, 700, 300, 90, 25], 0.2, 5e8),
            ([1500, 1400, 1300], 0.05, 1e9),
            ([2000, 50, 40, 30, 2, 1], 0.3, 5e8),
            ([33], 0.2, 5e8),
        ],
    )
    def test_hand_picked(self, node130, lengths, fraction, clock):
        problem = make_tiny_problem(
            node130, lengths, repeater_fraction=fraction, clock_frequency=clock
        )
        _assert_identical(*_pair(problem, units=32))

    @settings(max_examples=25, deadline=None)
    @given(
        lengths=st.sets(
            st.integers(min_value=2, max_value=1800), min_size=1, max_size=6
        ),
        fraction=st.sampled_from([0.0, 0.03, 0.15, 0.35]),
        clock=st.sampled_from([3e8, 7e8, 1.5e9]),
        units=st.sampled_from([8, 32, 64]),
        semi=st.sampled_from([0, 1]),
    )
    def test_parity_property(
        self, node130, lengths, fraction, clock, units, semi
    ):
        problem = make_tiny_problem(
            node130,
            sorted(lengths, reverse=True),
            repeater_fraction=fraction,
            clock_frequency=clock,
            semi_global_pairs=semi,
        )
        _assert_identical(*_pair(problem, units))

    def test_bunched_parity(self, small_baseline):
        """Full-pipeline problem at group granularity: both backends
        agree on the coarsened instance too, witness included."""
        _assert_identical(
            *_pair(small_baseline, units=128, bunch_size=5_000)
        )

    def test_infinite_unit_area_branch(self, node130):
        """Zero repeater fraction drives the inf-unit-area code path
        (every positive area is infeasible) on both backends."""
        problem = make_tiny_problem(
            node130, [900, 500, 100], repeater_fraction=0.0
        )
        _assert_identical(*_pair(problem, units=8))


class TestDeadline:
    def test_expired_deadline_raises_on_both(self, node130):
        problem = make_tiny_problem(node130, [1200, 700, 300])
        tables, _ = problem.tables()
        expired = time.monotonic() - 1.0
        for backend in BACKENDS:
            with pytest.raises(DeadlineExceeded):
                solve_rank_dp(
                    tables,
                    repeater_units=16,
                    deadline=expired,
                    backend=backend,
                )


class TestBackendSelection:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(RankComputationError):
            resolve_backend("fortran")

    def test_resolve_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "numpy"

    def test_env_var_selects_backend(self, node130, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        problem = make_tiny_problem(node130, [800, 200])
        result = compute_rank(problem, repeater_units=8)
        assert result.stats.backend == "python"

    def test_explicit_backend_overrides_env(self, node130, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        problem = make_tiny_problem(node130, [800, 200])
        result = compute_rank(problem, repeater_units=8, backend="numpy")
        assert result.stats.backend == "numpy"

    def test_invalid_backend_rejected_eagerly(self, node130):
        problem = make_tiny_problem(node130, [800, 200])
        with pytest.raises(RankComputationError):
            compute_rank(problem, solver="greedy", backend="fortran")
