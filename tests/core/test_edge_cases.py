"""Edge-case coverage for the rank pipeline."""

import dataclasses

import pytest

from repro import (
    ArchitectureSpec,
    DieModel,
    RankProblem,
    build_architecture,
    compute_rank,
)
from repro.wld.synthetic import single_length_wld, wld_from_pairs

from ..conftest import make_tiny_problem


class TestDegenerateArchitectures:
    def test_single_pair_stack(self, node130):
        problem = make_tiny_problem(
            node130,
            [800, 400, 100],
            local_pairs=1,
            semi_global_pairs=0,
            global_pairs=0,
        )
        result = compute_rank(problem, repeater_units=32)
        assert result.fits
        assert 0 <= result.rank <= 3

    def test_all_global_stack(self, node130):
        problem = make_tiny_problem(
            node130,
            [800, 400, 100],
            local_pairs=1,  # spec requires >= 0; keep one local to hold bulk
            semi_global_pairs=0,
            global_pairs=3,
        )
        result = compute_rank(problem, repeater_units=32)
        assert result.fits


class TestDegenerateWLDs:
    def test_single_wire(self, node130):
        problem = make_tiny_problem(node130, [500])
        result = compute_rank(problem, repeater_units=16)
        assert result.fits
        assert result.rank in (0, 1)
        assert result.total_wires == 1

    def test_single_group_many_wires(self, node130):
        arch = build_architecture(ArchitectureSpec(node=node130))
        problem = RankProblem(
            arch=arch,
            die=DieModel(node=node130, gate_count=10_000, repeater_fraction=0.2),
            wld=single_length_wld(50.0, 200),
            clock_frequency=5e8,
        )
        result = compute_rank(problem, repeater_units=64)
        assert result.fits
        assert result.rank % 1 == 0

    def test_all_identical_long_wires(self, node130):
        arch = build_architecture(ArchitectureSpec(node=node130))
        problem = RankProblem(
            arch=arch,
            die=DieModel(node=node130, gate_count=10_000, repeater_fraction=0.3),
            wld=single_length_wld(190.0, 8),
            clock_frequency=5e8,
        )
        dp = compute_rank(problem, repeater_units=64)
        greedy = compute_rank(problem, solver="greedy")
        assert dp.rank >= greedy.rank


class TestExtremeParameters:
    def test_impossible_clock_gives_zero_rank_but_fits(self, node130):
        problem = make_tiny_problem(node130, [800, 400], clock_frequency=1e12)
        result = compute_rank(problem, repeater_units=16)
        assert result.fits
        assert result.rank == 0

    def test_single_budget_cell(self, node130):
        problem = make_tiny_problem(node130, [800, 400, 100])
        result = compute_rank(problem, repeater_units=1)
        fine = compute_rank(problem, repeater_units=4096)
        assert 0 <= result.rank <= fine.rank

    def test_tiny_utilization_forces_definition3(self, node130):
        base = make_tiny_problem(node130, [1500] * 6, gate_count=1000)
        squeezed = dataclasses.replace(base, utilization=0.01)
        result = compute_rank(squeezed, repeater_units=16)
        assert not result.fits
        assert result.rank == 0

    def test_bunching_larger_than_wld_is_noop(self, node130):
        problem = make_tiny_problem(node130, [500, 300, 100])
        coarse = compute_rank(problem, bunch_size=10**6, repeater_units=32)
        fine = compute_rank(problem, repeater_units=32)
        assert coarse.rank == fine.rank

    def test_exact_budget_boundary(self, node130):
        """A budget exactly equal to the demand must be accepted
        (CEIL_EPS guards the floating-point edge)."""
        from repro.delay.repeater import optimal_repeater_size

        arch = build_architecture(
            ArchitectureSpec(
                node=node130, local_pairs=1, semi_global_pairs=0, global_pairs=1
            )
        )
        device = node130.device
        s_bot = optimal_repeater_size(arch.pair(1).rc, device)
        gates = 1000
        budget = 3 * s_bot * device.min_inverter_area  # exactly 3 stages
        gate_area = node130.gate_pitch ** 2 * gates
        die = DieModel(
            node=node130,
            gate_count=gates,
            repeater_fraction=budget / (budget + gate_area),
        )
        problem = RankProblem(
            arch=arch,
            die=die,
            wld=wld_from_pairs([(100.0, 1), (99.0, 1), (98.0, 1)]),
            clock_frequency=5e8,
        )
        # 3 wires x 1 stage each on the bottom pair = exactly the budget
        result = compute_rank(problem, repeater_units=3)
        assert result.rank == 3
