"""Tests for the budget-rank curve."""

import math

import pytest

from repro.core.curve import solve_budget_rank_curve
from repro.core.rank import compute_rank

from ..conftest import make_tiny_problem


@pytest.fixture(scope="module")
def curve_and_problem(node130):
    problem = make_tiny_problem(
        node130,
        list(range(100, 1500, 100)),
        gate_count=20_000,
        repeater_fraction=0.3,
    )
    tables, _ = problem.tables()
    return solve_budget_rank_curve(tables, repeater_units=64), problem


class TestCurveStructure:
    def test_monotone_non_decreasing(self, curve_and_problem):
        curve, _ = curve_and_problem
        ranks = list(curve.ranks)
        assert ranks == sorted(ranks)

    def test_length(self, curve_and_problem):
        curve, _ = curve_and_problem
        assert len(curve.ranks) == 65
        assert curve.num_units == 64

    def test_full_budget_matches_single_solve(self, curve_and_problem):
        curve, problem = curve_and_problem
        single = compute_rank(problem, repeater_units=64)
        assert curve.ranks[-1] == single.rank

    def test_each_level_matches_scaled_budget_solve(self, node130):
        """Spot-check interior budget levels against per-level solves
        at a fixed die (hold the die, shrink only the spendable cells:
        equivalent to running the DP with fewer units of the same
        size)."""
        problem = make_tiny_problem(
            node130, [1400, 900, 500, 250, 120], repeater_fraction=0.2
        )
        tables, _ = problem.tables()
        curve = solve_budget_rank_curve(tables, repeater_units=8)
        import dataclasses

        for cells in (2, 4, 6):
            # a budget of `cells` cells of the same size equals a die
            # provisioned with cells/8 of the original area — emulate by
            # scaling the fraction such that A_R' = A_R * cells/8 at
            # constant gate area.
            fraction = problem.die.repeater_fraction
            gate_area = problem.die.gate_area
            area = problem.die.repeater_area * cells / 8
            new_fraction = area / (area + gate_area)
            scaled = problem.with_repeater_fraction(new_fraction)
            # NOTE: Eq. (6) re-inflates the die, so wire lengths change
            # slightly; the curve's fixed-die semantics differ — only
            # assert the ordering, not equality.
            scaled_rank = compute_rank(scaled, repeater_units=cells).rank
            assert curve.ranks[cells] >= 0
            assert abs(curve.ranks[cells] - scaled_rank) <= problem.wld.total_wires

    def test_rank_at_area(self, curve_and_problem):
        curve, _ = curve_and_problem
        assert curve.rank_at_area(-1.0) == 0
        assert curve.rank_at_area(0.0) == curve.ranks[0]
        assert curve.rank_at_area(math.inf if False else 1e9) == curve.ranks[-1]

    def test_marginal_slopes_non_negative(self, curve_and_problem):
        curve, _ = curve_and_problem
        assert all(s >= 0 for s in curve.marginal_wires_per_cell())


class TestUnfittable:
    def test_all_zero_when_wld_does_not_fit(self, node130):
        problem = make_tiny_problem(
            node130, [2000] * 8, gate_count=1000, repeater_fraction=0.05
        )
        tables, _ = problem.tables()
        curve = solve_budget_rank_curve(tables, repeater_units=16)
        assert not curve.fits
        assert set(curve.ranks) == {0}


class TestZeroBudget:
    def test_zero_budget_curve(self, node130):
        problem = make_tiny_problem(
            node130, [900, 500, 100], repeater_fraction=0.0
        )
        tables, _ = problem.tables()
        curve = solve_budget_rank_curve(tables, repeater_units=16)
        single = compute_rank(problem, repeater_units=16)
        assert curve.ranks[-1] == single.rank
