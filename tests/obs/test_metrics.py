"""Unit tests for the metrics registry and its merge algebra."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.metrics import MetricsRegistry, _bucket_exponent


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5, "b": 0}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("u", 0.25)
        reg.gauge("u", 0.75)
        assert reg.snapshot()["gauges"] == {"u": 0.75}

    def test_observe_tracks_count_total_min_max(self):
        reg = MetricsRegistry()
        for seconds in (0.5, 2.0, 0.125):
            reg.observe("t", seconds)
        timer = reg.snapshot()["timers"]["t"]
        assert timer["count"] == 3
        assert timer["total_s"] == 2.625
        assert timer["min_s"] == 0.125
        assert timer["max_s"] == 2.0

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("t", 1e-9)  # below the smallest bucket
        json.dumps(reg.snapshot())  # must not raise (no inf/nan)

    def test_bucket_exponent_clamped(self):
        assert _bucket_exponent(0.0) == -20
        assert _bucket_exponent(1e-12) == -20
        assert _bucket_exponent(1e9) == 12
        # 0.5 < value <= 1 lands in bucket 0.
        assert _bucket_exponent(0.75) == 0

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1.0)
        reg.observe("t", 0.1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestMergeAlgebra:
    def _random_registry(self, ops):
        reg = MetricsRegistry()
        for kind, name, value in ops:
            if kind == 0:
                reg.inc(name, int(value * 10))
            elif kind == 1:
                reg.gauge(name, value)
            else:
                reg.observe(name, value)
        return reg

    _ops = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.sampled_from(["x", "y", "z"]),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        max_size=20,
    )

    @settings(max_examples=50, deadline=None)
    @given(ops_a=_ops, ops_b=_ops, ops_c=_ops)
    def test_merge_order_independent_on_counters_and_timers(
        self, ops_a, ops_b, ops_c
    ):
        """merge(A) then merge(B) == merge(B) then merge(A) for every
        field except gauges (documented last-write-wins) — the property
        that makes worker completion order irrelevant."""
        snaps = [
            self._random_registry(ops).snapshot()
            for ops in (ops_a, ops_b, ops_c)
        ]
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        f, b = forward.snapshot(), backward.snapshot()
        assert f["counters"] == b["counters"]
        assert f["timers"].keys() == b["timers"].keys()
        for name, ft in f["timers"].items():
            bt = b["timers"][name]
            # total_s is a float sum: order-independent only up to
            # rounding.  Everything else must match exactly.
            assert ft["count"] == bt["count"]
            assert ft["min_s"] == bt["min_s"]
            assert ft["max_s"] == bt["max_s"]
            assert ft["buckets"] == bt["buckets"]
            assert ft["total_s"] == pytest.approx(bt["total_s"], rel=1e-12)

    def test_merge_equals_sequential_collection(self):
        """Collecting in one registry == collecting in two and merging."""
        one = MetricsRegistry()
        for i in range(6):
            one.inc("n")
            one.observe("t", 0.1 * (i + 1))
        left, right = MetricsRegistry(), MetricsRegistry()
        for i in range(6):
            target = left if i % 2 else right
            target.inc("n")
            target.observe("t", 0.1 * (i + 1))
        merged = MetricsRegistry()
        merged.merge(left.snapshot())
        merged.merge(right.snapshot())
        a, b = one.snapshot(), merged.snapshot()
        assert a["counters"] == b["counters"]
        assert a["timers"]["t"]["count"] == b["timers"]["t"]["count"]
        assert a["timers"]["t"]["buckets"] == b["timers"]["t"]["buckets"]
        assert abs(a["timers"]["t"]["total_s"] - b["timers"]["t"]["total_s"]) < 1e-12

    def test_merge_empty_snapshot_is_identity(self):
        reg = MetricsRegistry()
        reg.inc("a", 3)
        before = reg.snapshot()
        reg.merge(MetricsRegistry().snapshot())
        assert reg.snapshot() == before


class TestGlobalHelpers:
    def test_disabled_helpers_publish_nothing(self):
        obs.inc("ghost")
        obs.gauge("ghost", 1.0)
        obs.observe("ghost", 1.0)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}

    def test_enable_gates_publishing(self):
        obs.enable()
        obs.inc("live", 2)
        obs.disable()
        obs.inc("live", 100)  # ignored again
        assert obs.snapshot()["counters"] == {"live": 2}

    def test_enable_without_trace_keeps_tracing_off(self):
        obs.enable()
        assert obs.metrics_enabled()
        assert not obs.tracing_enabled()

    def test_solver_publishes_into_registry(self, small_baseline):
        from repro import compute_rank

        obs.enable()
        result = compute_rank(small_baseline, bunch_size=2000, repeater_units=64)
        obs.disable()
        counters = obs.snapshot()["counters"]
        assert counters["solver.dp.solves"] == 1
        assert counters["solver.dp.rows"] == result.stats.rows > 0
        assert counters["solver.dp.transitions"] == result.stats.transitions
        assert obs.snapshot()["timers"]["solver.dp.solve_s"]["count"] == 1
