"""Tracing spans, the Chrome trace-event file, and its validator."""

import json

import pytest

from repro import obs
from repro.obs.trace import (
    _NULL_SPAN,
    dropped_events,
    events,
    span,
    validate_trace,
    write_trace,
)


class TestSpan:
    def test_disabled_span_is_shared_noop(self):
        assert span("anything") is _NULL_SPAN
        with span("anything"):
            pass
        assert events() == []

    def test_enabled_span_records_complete_event(self):
        obs.enable(trace_events=True)
        with span("unit_of_work", detail=7):
            pass
        obs.disable()
        (event,) = events()
        assert event["name"] == "unit_of_work"
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["dur"] >= 0
        assert event["args"] == {"detail": 7}
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)

    def test_span_records_exception_type(self):
        obs.enable(trace_events=True)
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        obs.disable()
        (event,) = events()
        assert event["args"]["error"] == "ValueError"

    def test_metrics_only_span_feeds_timer_not_events(self):
        obs.enable()  # metrics on, tracing off
        with span("timed_region"):
            pass
        obs.disable()
        assert events() == []
        timers = obs.snapshot()["timers"]
        assert timers["span.timed_region_s"]["count"] == 1

    def test_buffer_cap_counts_drops(self, monkeypatch):
        import repro.obs.trace as trace_mod

        monkeypatch.setattr(trace_mod, "MAX_EVENTS", 2)
        obs.enable(trace_events=True)
        for _ in range(4):
            with span("s"):
                pass
        obs.disable()
        assert len(events()) == 2
        assert dropped_events() == 2


class TestWriteAndValidate:
    def test_roundtrip_validates_clean(self, tmp_path):
        obs.enable(trace_events=True)
        with span("outer"):
            with span("inner"):
                pass
        obs.disable()
        out = tmp_path / "trace.json"
        count = write_trace(out)
        assert count == 2
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["events_dropped"] == 0
        assert "metrics" in payload

    def test_write_trace_merges_extra_other_data(self, tmp_path):
        out = tmp_path / "trace.json"
        write_trace(out, extra={"run": "bench"})
        payload = json.loads(out.read_text())
        assert payload["otherData"]["run"] == "bench"

    def test_validator_rejects_malformed_events(self):
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": "nope"}) != []
        bad_phase = {"traceEvents": [
            {"name": "e", "ph": "Q", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("phase" in p for p in validate_trace(bad_phase))
        missing_dur = {"traceEvents": [
            {"name": "e", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("dur" in p for p in validate_trace(missing_dur))
        bad_ts = {"traceEvents": [
            {"name": "e", "ph": "i", "ts": -5, "pid": 1, "tid": 1}
        ]}
        assert any("ts" in p for p in validate_trace(bad_ts))

    def test_validator_accepts_events_emitted_by_spans(self):
        obs.enable(trace_events=True)
        with span("a", key="value"):
            pass
        obs.disable()
        assert validate_trace({"traceEvents": events()}) == []
