"""Sequential-vs-parallel observability parity through the CLI.

The contract pinned here: a ``--trace`` run with ``--jobs 2`` reports
exactly the same deterministic counter totals as the same run with
``--jobs 1``, and both trace files pass Chrome trace-event validation.
Cache-warm accounting (``precompute.*`` / ``davis_cache.*``) and the
``parallel.*`` family are excluded by definition — per-worker cache
copies make those splits depend on point placement.
"""

import json

from repro import obs
from repro.cli import EXIT_OK, main
from repro.obs.aggregate import (
    NONDETERMINISTIC_PREFIXES,
    deterministic_counters,
)

_SWEEP = [
    "sweep", "R",
    "--gates", "50000",
    "--bunch", "2000",
    "--units", "64",
]


def _run_sweep(trace_path, jobs):
    obs.reset()
    # --pool-mode warm: the parity contract is about the *pool* path,
    # which "auto" would route around on a single-CPU CI runner.
    argv = _SWEEP + ["--jobs", str(jobs), "--trace", str(trace_path)]
    if jobs > 1:
        argv += ["--pool-mode", "warm"]
    code = main(argv)
    assert code == EXIT_OK
    return json.loads(trace_path.read_text())


class TestCounterParity:
    def test_parallel_matches_sequential(self, tmp_path):
        seq = _run_sweep(tmp_path / "seq.json", jobs=1)
        par = _run_sweep(tmp_path / "par.json", jobs=2)

        seq_counters = deterministic_counters(seq["metrics"])
        par_counters = deterministic_counters(par["metrics"])
        # The run did real work and the comparison is not vacuous.
        assert seq_counters["solver.dp.solves"] > 0
        assert seq_counters["runner.points_completed"] > 0
        assert par_counters == seq_counters

    def test_trace_files_validate(self, tmp_path):
        from repro.obs.trace import validate_trace

        for jobs in (1, 2):
            payload = _run_sweep(tmp_path / f"j{jobs}.json", jobs=jobs)
            assert validate_trace(payload) == []
            assert payload["traceEvents"], "trace recorded no spans"
            names = {e["name"] for e in payload["traceEvents"]}
            assert "run_batch" in names
            assert "solve_rank_dp" in names
            if jobs == 2:
                # Worker events merged back carry worker pids.
                pids = {e["pid"] for e in payload["traceEvents"]}
                assert len(pids) > 1

    def test_parallel_only_metrics_are_flagged_nondeterministic(self, tmp_path):
        par = _run_sweep(tmp_path / "par.json", jobs=2)
        gauges = par["metrics"]["gauges"]
        assert "parallel.worker_utilization" in gauges
        assert 0.0 < gauges["parallel.worker_utilization"] <= 1.0
        assert any(
            name.startswith("parallel.")
            for name in NONDETERMINISTIC_PREFIXES
        )


class TestAggregateHelpers:
    def test_deterministic_counters_filters_prefixes(self):
        snap = {
            "counters": {
                "solver.dp.rows": 10,
                "precompute.tables.hits": 3,
                "davis_cache.misses": 1,
                "parallel.queue_wait_s": 2,
                "runner.attempts": 4,
            }
        }
        assert deterministic_counters(snap) == {
            "solver.dp.rows": 10,
            "runner.attempts": 4,
        }

    def test_begin_end_point_ships_delta_only(self):
        from repro.obs import aggregate

        obs.enable()
        obs.inc("stale.counter", 99)
        started = aggregate.begin_point()
        obs.inc("fresh.counter", 2)
        payload = aggregate.end_point(started)
        obs.disable()
        assert payload["metrics"]["counters"] == {"fresh.counter": 2}
        assert payload["ended"] >= payload["started"]
        assert aggregate.busy_seconds(payload) >= 0.0
        assert aggregate.busy_seconds(None) == 0.0

    def test_merge_point_records_queue_wait(self):
        from repro.obs import aggregate

        obs.enable()
        payload = {
            "metrics": {"counters": {"c": 1}},
            "events": [],
            "started": 10.0,
            "ended": 11.0,
        }
        aggregate.merge_point(payload, submitted=9.5)
        obs.disable()
        snap = obs.snapshot()
        assert snap["counters"] == {"c": 1}
        timer = snap["timers"]["parallel.queue_wait_s"]
        assert timer["count"] == 1
        assert abs(timer["total_s"] - 0.5) < 1e-9
