"""Observability tests always leave the subsystem off and empty.

The enable flags and the registry are process-global, so a test that
forgot to disable would leak instrumentation cost (and collected
numbers) into every later test.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
