"""Tests for the M' oracle (Algorithm 4)."""

import math

import pytest

from repro.assign.wire_assign import assign_with_delay
from repro.errors import AssignmentError

from .test_tables import make_tables


@pytest.fixture
def tables(arch130, die130):
    return make_tables(
        arch130, die130, [(1000.0, 2), (300.0, 10), (40.0, 100), (2.0, 500)]
    )


class TestEmptySlice:
    def test_feasible_with_full_leftover(self, tables):
        result = assign_with_delay(tables, 0, 1, 1, 0, 0, 1e-6)
        assert result.feasible
        assert result.wire_area_used == 0.0
        assert result.leftover_capacity == pytest.approx(tables.capacity(0, 0, 0))


class TestFeasibleAssignment:
    def test_accounting(self, tables):
        result = assign_with_delay(
            tables, 0, 0, 2, wires_above=0, repeaters_above=0,
            repeater_area_available=tables.repeater_budget_area,
        )
        assert result.feasible
        expected_area = float(tables.cum_wire_area[0][2])
        assert result.wire_area_used == pytest.approx(expected_area)
        assert result.leftover_capacity == pytest.approx(
            tables.capacity(0, 0, 0) - expected_area
        )
        assert result.repeater_area_used == pytest.approx(
            float(tables.cum_rep_area[0][2])
        )

    def test_repeater_count_is_inline_only(self, tables):
        """Blockage counts inserted repeaters (stages - 1), not charged
        stages."""
        result = assign_with_delay(
            tables, 0, 0, 2, 0, 0, tables.repeater_budget_area
        )
        expected = int(tables.cum_inserted[0][2])
        assert result.repeaters_inserted == expected


class TestInfeasibility:
    def test_budget_exhaustion(self, tables):
        result = assign_with_delay(tables, 0, 0, 2, 0, 0, 0.0)
        needs_budget = float(tables.cum_rep_area[0][2]) > 0
        assert result.feasible != needs_budget

    def test_capacity_exhaustion(self, tables):
        """Enough blockage from above leaves no room for any wire."""
        blocked_wires = 10**9
        result = assign_with_delay(
            tables, 0, 0, 1, blocked_wires, 0, tables.repeater_budget_area
        )
        assert not result.feasible

    def test_delay_infeasible_group(self, arch130, die130):
        tables = make_tables(arch130, die130, [(1000.0, 1), (1.0, 10)], clock=3e9)
        # shortest group cannot meet its target anywhere
        result = assign_with_delay(
            tables, 3, 0, 2, 0, 0, tables.repeater_budget_area
        )
        assert not result.feasible

    def test_failure_result_is_zeroed(self, tables):
        result = assign_with_delay(tables, 0, 0, 2, 0, 0, 0.0)
        if not result.feasible:
            assert result.wire_area_used == 0.0
            assert result.repeaters_inserted == 0


class TestValidation:
    def test_bad_pair_index(self, tables):
        with pytest.raises(AssignmentError):
            assign_with_delay(tables, 9, 0, 1, 0, 0, 1.0)

    def test_bad_slice(self, tables):
        with pytest.raises(AssignmentError):
            assign_with_delay(tables, 0, 3, 1, 0, 0, 1.0)
        with pytest.raises(AssignmentError):
            assign_with_delay(tables, 0, 0, 99, 0, 0, 1.0)

    def test_negative_budget(self, tables):
        with pytest.raises(AssignmentError):
            assign_with_delay(tables, 0, 0, 1, 0, 0, -1.0)


class TestMonotonicity:
    def test_more_budget_never_hurts(self, tables):
        small = assign_with_delay(tables, 1, 0, 3, 0, 0, 1e-9)
        large = assign_with_delay(tables, 1, 0, 3, 0, 0, 1e-3)
        assert large.feasible or not small.feasible

    def test_longer_slice_needs_more_area(self, tables):
        short = assign_with_delay(tables, 1, 0, 2, 0, 0, 1e-3)
        longer = assign_with_delay(tables, 1, 0, 3, 0, 0, 1e-3)
        if short.feasible and longer.feasible:
            assert longer.wire_area_used > short.wire_area_used
