"""Tests for the M'' oracle (Algorithm 5, Lemma 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.greedy_assign import _max_assignable, pack_suffix
from repro.errors import AssignmentError

from .test_tables import make_tables


@pytest.fixture
def tables(arch130, die130):
    return make_tables(
        arch130, die130, [(1000.0, 2), (300.0, 10), (40.0, 100), (2.0, 500)]
    )


class TestMaxAssignable:
    def test_simple_fit(self):
        # capacity 100, wires of area 10, no via overhead
        assert _max_assignable(100.0, 0.0, 10.0, 0.0, 5, 5) == 5

    def test_partial_fit(self):
        assert _max_assignable(35.0, 0.0, 10.0, 0.0, 5, 5) == 3

    def test_area_already_used(self):
        assert _max_assignable(35.0, 30.0, 10.0, 0.0, 5, 5) == 0

    def test_via_reservation_blocks(self):
        # 5 wires remaining, each reserving 10 of via area: capacity 49
        # cannot even hold one wire of area 1 plus 4 x 10 reservations.
        assert _max_assignable(40.0, 0.0, 1.0, 10.0, 5, 5) == 0

    def test_via_reservation_shrinks_as_wires_assign(self):
        # assigning frees reservation: area 1 < via 10, so slope < 0 and
        # if the first wire fits, all do.
        assert _max_assignable(50.0, 0.0, 1.0, 10.0, 5, 5) == 5

    def test_group_remaining_cap(self):
        assert _max_assignable(1000.0, 0.0, 1.0, 0.0, 100, 7) == 7


class TestPackSuffix:
    def test_nothing_to_pack(self, tables):
        assert pack_suffix(tables, tables.num_groups, 0, 0, 0)

    def test_no_pairs_left(self, tables):
        assert not pack_suffix(tables, 0, tables.num_pairs, 0, 0)

    def test_everything_fits_baseline(self, tables):
        assert pack_suffix(tables, 0, 0, 0, 0)

    def test_blockage_can_kill_packing(self, tables):
        assert not pack_suffix(tables, 0, 0, 10**10, 0)

    def test_repeater_blockage_counts(self, tables):
        fits_without = pack_suffix(tables, 0, 3, 0, 0)
        fits_with = pack_suffix(tables, 0, 3, 0, 1e12)
        assert fits_without and not fits_with

    def test_leftover_override(self, tables):
        # with a zero-leftover top pair and only that pair available,
        # nothing can be packed
        assert not pack_suffix(
            tables, 0, tables.num_pairs - 1, 0, 0, top_pair_leftover=0.0
        )

    def test_fewer_pairs_harder(self, tables):
        for top in range(tables.num_pairs):
            if not pack_suffix(tables, 0, top, 0, 0):
                # once infeasible, giving even fewer pairs stays infeasible
                for worse in range(top + 1, tables.num_pairs):
                    assert not pack_suffix(tables, 0, worse, 0, 0)
                break

    def test_suffix_shrinking_helps(self, tables):
        """If a suffix fits, any shorter suffix fits too."""
        for start in range(tables.num_groups + 1):
            if pack_suffix(tables, start, 2, 0, 0):
                for easier in range(start, tables.num_groups + 1):
                    assert pack_suffix(tables, easier, 2, 0, 0)
                break

    def test_invalid_args(self, tables):
        with pytest.raises(AssignmentError):
            pack_suffix(tables, -1, 0, 0, 0)
        with pytest.raises(AssignmentError):
            pack_suffix(tables, 0, 99, 0, 0)


def brute_force_pack(tables, start_group, top_pair, wires_above, reps_above):
    """Exhaustively try every monotone wire->pair packing (tiny cases).

    Wires are expanded to individuals; each partition assigns contiguous
    runs of the (descending) suffix to pairs top-down.  Blockage: prefix
    wires + repeaters above every pair, plus suffix wires assigned above
    that pair.
    """
    lengths = []
    for g in range(start_group, tables.num_groups):
        lengths.extend([float(tables.lengths_m[g])] * int(tables.counts[g]))
    n = len(lengths)
    pairs = list(range(top_pair, tables.num_pairs))
    m = len(pairs)
    if n == 0:
        return True
    if m == 0:
        return False
    for cuts in itertools.combinations(range(n + m - 1), m - 1):
        boundary = [0]
        for index, cut in enumerate(cuts):
            boundary.append(cut - index)
        boundary.append(n)
        ok = True
        for pi, pair in enumerate(pairs):
            segment = lengths[boundary[pi]: boundary[pi + 1]]
            above = wires_above + boundary[pi]
            capacity = tables.capacity(pair, above, reps_above)
            area = sum(l * float(tables.pair_pitch[pair]) for l in segment)
            if area > capacity * (1 + 1e-9):
                ok = False
                break
        if ok:
            return True
    return False


class TestLemma1:
    """Greedy bottom-up packing is optimal (paper Lemma 1): whenever the
    greedy packer fails, no monotone packing exists at all."""

    @settings(max_examples=40, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=1500), min_size=1, max_size=7
        ),
        gate_count=st.sampled_from([3000, 20_000, 100_000]),
    )
    def test_greedy_agrees_with_brute_force(self, lengths, gate_count, arch130):
        from repro.arch.die import DieModel
        from repro.tech.presets import NODE_130NM

        die = DieModel(
            node=NODE_130NM, gate_count=gate_count, repeater_fraction=0.3
        )
        tables = make_tables(
            arch130, die, [(float(l), 1) for l in set(lengths)]
        )
        greedy = pack_suffix(tables, 0, 2, 0, 0)
        brute = brute_force_pack(tables, 0, 2, 0, 0)
        assert greedy == brute


class TestPackRequiredLeftover:
    """The closed-form leftover threshold must bracket the real packer:
    below it pack_suffix fails, at-or-above it succeeds.  The DP's memo
    prunes only below ``threshold * (1 - 1e-9)``, so agreement here is
    what keeps the pruning sound."""

    def test_zero_when_suffix_fits_without_top_pair(self, tables):
        from repro.assign.greedy_assign import pack_required_leftover

        assert pack_suffix(tables, 0, 0, 0, 0)
        # Suffix already fits with a zero-capacity top pair => threshold 0.
        if pack_suffix(tables, 0, 0, 0, 0, top_pair_leftover=0.0):
            assert pack_required_leftover(tables, 0, 0, 0, 0) == 0.0

    def test_threshold_brackets_pack_suffix(self, tables):
        from repro.assign.greedy_assign import pack_required_leftover

        checked = 0
        for start in range(tables.num_groups + 1):
            for top in range(tables.num_pairs):
                for wires_above in (0, 5, 50):
                    req = pack_required_leftover(
                        tables, start, top, wires_above, 0
                    )
                    if req == 0.0:
                        continue
                    assert not pack_suffix(
                        tables,
                        start,
                        top,
                        wires_above,
                        0,
                        top_pair_leftover=req * (1.0 - 1e-6),
                    )
                    assert pack_suffix(
                        tables,
                        start,
                        top,
                        wires_above,
                        0,
                        top_pair_leftover=req * (1.0 + 1e-6),
                    )
                    checked += 1
        assert checked > 0  # the sweep actually exercised thresholds

    @settings(max_examples=30, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=1500), min_size=1, max_size=6
        ),
        wires_above=st.integers(min_value=0, max_value=30),
        repeaters_above=st.integers(min_value=0, max_value=3),
    )
    def test_threshold_monotone_in_repeaters(
        self, lengths, wires_above, repeaters_above, arch130, die130
    ):
        """More repeater blockage never lowers the required leftover."""
        from repro.assign.greedy_assign import pack_required_leftover

        tables = make_tables(
            arch130, die130, [(float(l), 2) for l in set(lengths)]
        )
        rep_area = 1e-10
        lo = pack_required_leftover(
            tables, 0, 1, wires_above, repeaters_above * rep_area
        )
        hi = pack_required_leftover(
            tables, 0, 1, wires_above, (repeaters_above + 1) * rep_area
        )
        assert hi >= lo
