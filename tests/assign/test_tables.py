"""Tests for AssignmentTables construction."""

import numpy as np
import pytest

from repro.assign.tables import build_tables
from repro.delay.repeater import optimal_repeater_size
from repro.delay.target import LinearTargetModel
from repro.errors import RankComputationError
from repro.wld.synthetic import wld_from_pairs


def make_tables(arch130, die130, lengths_counts, clock=5e8, **kwargs):
    wld = wld_from_pairs(lengths_counts)
    target = LinearTargetModel(
        max_length=die130.wire_length(wld.max_length), clock_frequency=clock
    )
    return build_tables(arch130, die130, wld, target, **kwargs)


@pytest.fixture
def tables(arch130, die130):
    return make_tables(
        arch130, die130, [(1000.0, 2), (300.0, 10), (40.0, 100), (2.0, 500)]
    )


class TestShapes:
    def test_dimensions(self, tables):
        assert tables.num_pairs == 4
        assert tables.num_groups == 4
        assert tables.total_wires == 612
        assert tables.wire_area.shape == (4, 4)
        assert tables.cum_wire_area.shape == (4, 5)

    def test_cum_wires(self, tables):
        assert list(tables.cum_wires) == [0, 2, 12, 112, 612]

    def test_lengths_converted_to_metres(self, tables, die130):
        assert tables.lengths_m[0] == pytest.approx(
            1000.0 * die130.adjusted_gate_pitch
        )


class TestPerPairQuantities:
    def test_wire_area_formula(self, tables):
        for p in range(tables.num_pairs):
            expected = tables.lengths_m * tables.pair_pitch[p] * tables.counts
            assert tables.wire_area[p] == pytest.approx(expected)

    def test_cum_wire_area_consistent(self, tables):
        for p in range(tables.num_pairs):
            assert tables.cum_wire_area[p][-1] == pytest.approx(
                tables.wire_area[p].sum()
            )
            assert (np.diff(tables.cum_wire_area[p]) >= 0).all()

    def test_repeater_size_is_eq4_optimum(self, tables, arch130, die130):
        for p, pair in enumerate(arch130):
            assert tables.repeater_size[p] == pytest.approx(
                optimal_repeater_size(pair.rc, die130.node.device)
            )

    def test_global_pair_largest_repeaters(self, tables):
        assert tables.repeater_size[0] == tables.repeater_size.max()

    def test_rep_area_charges_stages(self, tables):
        """Budget area = count * charged_stages * unit area."""
        for p in range(tables.num_pairs):
            charged = np.where(tables.stages[p] > 0, tables.stages[p], 0)
            expected = tables.counts * charged * tables.repeater_unit_area[p]
            assert tables.rep_area[p] == pytest.approx(expected)

    def test_inserted_is_stages_minus_one(self, tables):
        for p in range(tables.num_pairs):
            expected = np.maximum(
                np.where(tables.stages[p] > 0, tables.stages[p], 0) - 1, 0
            )
            assert (tables.inserted[p] == expected).all()

    def test_next_infeasible_structure(self, tables):
        for p in range(tables.num_pairs):
            nxt = tables.next_infeasible[p]
            assert nxt[-1] == tables.num_groups
            for g in range(tables.num_groups):
                limit = int(nxt[g])
                # all groups in [g, limit) are feasible on this pair
                assert (tables.stages[p][g:limit] >= 0).all()
                if limit < tables.num_groups:
                    assert tables.stages[p][limit] < 0


class TestCapacity:
    def test_unblocked_capacity(self, tables, die130):
        assert tables.capacity(0, 0, 0) == pytest.approx(2.0 * die130.die_area)

    def test_blockage_reduces_capacity(self, tables):
        assert tables.capacity(2, 100, 50) < tables.capacity(2, 0, 0)

    def test_blockage_formula(self, tables):
        expected = tables.routing_capacity - (
            50 + tables.vias_per_wire * 100
        ) * float(tables.via_area[2])
        assert tables.capacity(2, 100, 50) == pytest.approx(expected)

    def test_clamped_at_zero(self, tables):
        assert tables.capacity(3, 1e12, 1e12) == 0.0

    def test_pair_capacity_factor(self, arch130, die130):
        paper = make_tables(
            arch130, die130, [(10.0, 5)], pair_capacity_factor=1.0
        )
        assert paper.routing_capacity == pytest.approx(die130.die_area)


class TestPolicies:
    def test_budgeted_policy_never_free(self, tables):
        """Under the default policy a feasible group always pays >= 1
        charged stage (there is no stages == 0)."""
        assert not (tables.stages == 0).any()

    def test_free_bare_policy_allows_zero(self, arch130, die130):
        tables = make_tables(
            arch130,
            die130,
            [(500.0, 3), (100.0, 10)],
            driver_policy="free-bare",
        )
        # Long wires at a loose 100 MHz target pass from the bare driver.
        loose = make_tables(
            arch130,
            die130,
            [(500.0, 3), (100.0, 10)],
            clock=1e8,
            driver_policy="free-bare",
        )
        assert (loose.stages == 0).any()

    def test_unknown_policy_rejected(self, arch130, die130):
        with pytest.raises(RankComputationError):
            make_tables(arch130, die130, [(10.0, 5)], driver_policy="nonsense")

    def test_invalid_utilization_rejected(self, arch130, die130):
        with pytest.raises(RankComputationError):
            make_tables(arch130, die130, [(10.0, 5)], utilization=0.0)

    def test_invalid_capacity_factor_rejected(self, arch130, die130):
        with pytest.raises(RankComputationError):
            make_tables(arch130, die130, [(10.0, 5)], pair_capacity_factor=0.0)


class TestPoisoning:
    def test_infeasible_groups_poison_cumulative_sums(self, arch130, die130):
        """A 3 GHz clock makes the shortest wires infeasible; slices
        crossing them must read as +inf."""
        tables = make_tables(
            arch130, die130, [(1000.0, 2), (1.0, 50)], clock=3e9
        )
        assert (tables.stages[:, -1] == -1).all()
        for p in range(tables.num_pairs):
            assert np.isinf(tables.cum_rep_area[p][-1])
            assert np.isfinite(tables.cum_rep_area[p][1])
