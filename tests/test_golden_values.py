"""Golden regression values at full paper scale.

These exact integers pin the calibrated reproduction: any change to the
WLD generator, RC models, device constants, delay model, discretization
or solver that moves a headline number will fail here loudly instead of
silently drifting EXPERIMENTS.md.  Each check is a single ~0.5 s rank
computation.

If a change is *intentional* (recalibration), update these values and
EXPERIMENTS.md together.
"""

import pytest

from repro import compute_rank
from repro.core.scenarios import paper_baseline_130nm
from repro.wld.davis import DavisParameters, davis_wld

PAPER_OPTIONS = dict(bunch_size=10_000, repeater_units=512)


@pytest.fixture(scope="module")
def baseline():
    return paper_baseline_130nm()


class TestGoldenWLD:
    def test_total_wires(self):
        wld = davis_wld(DavisParameters(gate_count=1_000_000))
        assert wld.total_wires == 2_988_057

    def test_length_class_shares(self):
        wld = davis_wld(DavisParameters(gate_count=1_000_000))
        counts = {length: count for length, count in wld}
        n = wld.total_wires
        assert n - counts[1.0] == 1_385_289  # wires >= 2 pitches
        assert n - counts[1.0] - counts[2.0] == 925_475  # >= 3
        assert n - counts[1.0] - counts[2.0] - counts[3.0] == 704_072  # >= 4


class TestGoldenRanks:
    def test_baseline_rank(self, baseline):
        result = compute_rank(baseline, **PAPER_OPTIONS)
        assert result.rank == 1_305_475
        assert result.normalized == pytest.approx(0.436898, abs=1e-6)

    def test_c_plateau_low(self, baseline):
        result = compute_rank(
            baseline.with_clock_frequency(1.3e9), **PAPER_OPTIONS
        )
        assert result.rank == 925_475  # exactly the l>=3 share

    def test_c_plateau_high(self, baseline):
        result = compute_rank(
            baseline.with_clock_frequency(1.7e9), **PAPER_OPTIONS
        )
        assert result.rank == 704_072  # exactly the l>=4 share

    def test_r_low_budget(self, baseline):
        result = compute_rank(
            baseline.with_repeater_fraction(0.1), **PAPER_OPTIONS
        )
        assert result.rank == 210_875

    def test_greedy_baseline(self, baseline):
        result = compute_rank(baseline, solver="greedy", bunch_size=10_000)
        assert result.rank == 1_193_992
