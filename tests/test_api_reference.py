"""The generated API reference must stay current and complete."""

import runpy
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
TOOL = ROOT / "tools" / "gen_api_reference.py"


def run_tool(argv):
    saved = sys.argv
    sys.argv = [str(TOOL)] + argv
    try:
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(str(TOOL), run_name="__main__")
        return excinfo.value.code
    finally:
        sys.argv = saved


def test_reference_is_current():
    assert run_tool(["--check"]) == 0


def test_regeneration_round_trip(tmp_path):
    out = tmp_path / "api.md"
    assert run_tool(["--output", str(out)]) == 0
    text = out.read_text()
    assert text.startswith("# API reference")
    # spot-check a few core symbols made it in
    for symbol in ("compute_rank", "WireLengthDistribution", "davis_wld",
                   "solve_rank_dp", "optimize_architecture"):
        assert symbol in text


def test_check_detects_staleness(tmp_path):
    out = tmp_path / "api.md"
    out.write_text("stale")
    assert run_tool(["--check", "--output", str(out)]) == 1
