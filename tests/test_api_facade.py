"""The stable ``repro.api`` facade and its deprecation shims.

Covers the API-redesign contract: the facade functions are re-exported
from :mod:`repro`, old import spellings and old calling conventions
keep working but emit :class:`DeprecationWarning`, and the facade
returns results identical to the implementation modules it wraps.
"""

import warnings

import pytest

import repro
from repro import api
from repro.errors import RankComputationError

from .conftest import make_tiny_problem


class TestFacadeSurface:
    def test_reexported_from_top_level(self):
        for name in api.__all__:
            if name == "optimize":
                # deliberately not re-exported: the name belongs to the
                # repro.optimize subpackage at top level
                assert repro.optimize.__name__ == "repro.optimize"
                continue
            assert getattr(repro, name) is getattr(api, name)

    def test_facade_matches_impl(self, node130):
        problem = make_tiny_problem(node130, [1200, 700, 300])
        from repro.core.rank import compute_rank as impl

        via_facade = api.compute_rank(problem, repeater_units=16)
        direct = impl(problem, repeater_units=16)
        assert via_facade == direct

    def test_backend_knob(self, node130):
        problem = make_tiny_problem(node130, [1200, 700, 300])
        py = api.compute_rank(problem, repeater_units=16, backend="python")
        np_ = api.compute_rank(problem, repeater_units=16, backend="numpy")
        assert py.rank == np_.rank
        assert py.stats.backend == "python"
        assert np_.stats.backend == "numpy"

    def test_corners_default_set(self, node130):
        from repro.analysis.corners import STANDARD_CORNERS

        problem = make_tiny_problem(node130, [900, 400])
        report = api.corners(problem, repeater_units=8)
        assert len(report.results) == len(STANDARD_CORNERS)

    def test_sweep(self, node130):
        base = make_tiny_problem(node130, [900, 400])
        result = api.sweep(
            "toy",
            [5e8, 1e9],
            lambda clock: base.with_clock(clock)
            if hasattr(base, "with_clock")
            else make_tiny_problem(node130, [900, 400], clock_frequency=clock),
            repeater_units=8,
        )
        assert len(result.points) == 2

    def test_bench_validates_repeats(self):
        with pytest.raises(RankComputationError):
            api.bench(repeats=0)

    def test_optimize_rank_is_the_nonshadowing_spelling(self):
        """``api.optimize_rank`` is the same callable as ``api.optimize``
        under a name that survives top-level re-export (where plain
        ``optimize`` would shadow the ``repro.optimize`` subpackage)."""
        assert api.optimize_rank is api.optimize
        assert repro.optimize_rank is api.optimize
        assert repro.optimize.__name__ == "repro.optimize"

    def test_design_space_reexported(self):
        from repro.optimize.space import DesignSpace as impl

        assert api.DesignSpace is impl
        assert repro.DesignSpace is impl

    def test_solve_rank_request_round_trip(self):
        request = api.RankRequest(gates=20_000, bunch_size=2_000)
        result = api.solve_rank_request(request)
        assert result.rank > 0
        assert 0.0 < result.rank / result.total_wires <= 1.0


class TestDeprecationShims:
    def test_core_import_warns(self):
        import repro.core as core

        for name in ("compute_rank", "baseline_problem", "paper_baseline_130nm"):
            with pytest.warns(DeprecationWarning, match=name):
                obj = getattr(core, name)
            assert callable(obj)

    def test_core_unknown_attribute_raises(self):
        import repro.core as core

        with pytest.raises(AttributeError):
            core.definitely_not_a_thing

    def test_positional_options_warn_and_agree(self, node130):
        problem = make_tiny_problem(node130, [1200, 700, 300])
        with pytest.warns(DeprecationWarning, match="positional"):
            legacy = api.compute_rank(problem, "dp", None, None, 16)
        modern = api.compute_rank(
            problem, solver="dp", bunch_size=None, max_groups=None,
            repeater_units=16,
        )
        assert legacy == modern

    def test_too_many_positional_options_raise(self, node130):
        problem = make_tiny_problem(node130, [900])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                api.compute_rank(
                    problem, "dp", None, None, 16, False, None, None, "extra"
                )

    def test_top_level_import_does_not_warn(self):
        """``from repro import compute_rank`` is the supported spelling
        and must stay silent."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro import compute_rank  # noqa: F401
            from repro import baseline_problem  # noqa: F401
