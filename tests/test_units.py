"""Tests for unit conversion helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import UnitsError


class TestLengthConversions:
    def test_um_to_metres(self):
        assert units.um(1.0) == pytest.approx(1e-6)

    def test_nm_to_metres(self):
        assert units.nm(130) == pytest.approx(130e-9)

    def test_mm_to_metres(self):
        assert units.mm(2.5) == pytest.approx(2.5e-3)

    def test_zero_is_allowed(self):
        assert units.um(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(UnitsError):
            units.um(-1.0)

    def test_negative_nm_rejected(self):
        with pytest.raises(UnitsError):
            units.nm(-0.1)

    def test_to_um_roundtrip(self):
        assert units.to_um(units.um(0.23)) == pytest.approx(0.23)

    def test_to_mm_roundtrip(self):
        assert units.to_mm(units.mm(4.2)) == pytest.approx(4.2)


class TestAreaConversions:
    def test_mm2(self):
        assert units.mm2(1.0) == pytest.approx(1e-6)

    def test_um2(self):
        assert units.um2(1.0) == pytest.approx(1e-12)

    def test_to_mm2_roundtrip(self):
        assert units.to_mm2(units.mm2(4.47)) == pytest.approx(4.47)

    def test_to_um2_roundtrip(self):
        assert units.to_um2(units.um2(0.42)) == pytest.approx(0.42)

    def test_negative_area_rejected(self):
        with pytest.raises(UnitsError):
            units.mm2(-1.0)


class TestTimeConversions:
    def test_ps(self):
        assert units.ps(1.0) == pytest.approx(1e-12)

    def test_ns(self):
        assert units.ns(2.0) == pytest.approx(2e-9)

    def test_to_ps_roundtrip(self):
        assert units.to_ps(units.ps(16.8)) == pytest.approx(16.8)

    def test_to_ns_roundtrip(self):
        assert units.to_ns(units.ns(2.0)) == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(UnitsError):
            units.ps(-5.0)


class TestFrequencyConversions:
    def test_mhz(self):
        assert units.mhz(500) == pytest.approx(5e8)

    def test_ghz(self):
        assert units.ghz(1.7) == pytest.approx(1.7e9)

    def test_to_ghz_roundtrip(self):
        assert units.to_ghz(units.ghz(1.1)) == pytest.approx(1.1)

    def test_negative_frequency_rejected(self):
        with pytest.raises(UnitsError):
            units.ghz(-1.0)


class TestCapacitanceConversions:
    def test_ff(self):
        assert units.ff(1.5) == pytest.approx(1.5e-15)

    def test_to_ff_roundtrip(self):
        assert units.to_ff(units.ff(0.6)) == pytest.approx(0.6)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(UnitsError):
            units.ff(-2.0)


@given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
def test_length_roundtrip_property(value):
    assert units.to_um(units.um(value)) == pytest.approx(value, rel=1e-12)


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_time_roundtrip_property(value):
    assert units.to_ns(units.ns(value)) == pytest.approx(value, rel=1e-12)


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_frequency_scaling_consistency(value):
    assert units.ghz(value) == pytest.approx(1000.0 * units.mhz(value), rel=1e-12)


def test_unit_constants_are_consistent():
    assert units.UM == pytest.approx(1000.0 * units.NM)
    assert units.MM == pytest.approx(1000.0 * units.UM)
    assert units.NS == pytest.approx(1000.0 * units.PS)
    assert units.GHZ == pytest.approx(1000.0 * units.MHZ)
    assert units.PF == pytest.approx(1000.0 * units.FF)


def test_constants_module_values():
    from repro import constants

    assert constants.SWITCHING_A == pytest.approx(0.4)
    assert constants.SWITCHING_B == pytest.approx(0.7)
    assert constants.GATE_PITCH_FACTOR == pytest.approx(12.6)
    assert constants.K_SILICON_DIOXIDE == pytest.approx(3.9)
    assert constants.MILLER_WORST_CASE == pytest.approx(2.0)
    assert constants.MILLER_SHIELDED == pytest.approx(1.0)
    assert 8.8e-12 < constants.EPS0 < 8.9e-12
    assert math.isfinite(constants.RESISTIVITY_COPPER)
    assert constants.RESISTIVITY_COPPER < constants.RESISTIVITY_ALUMINIUM
