"""The concurrency-safety rules (RPL007–RPL011) against the fixture
mini-repo, plus the CLI surface that rides on them (``--explain``,
``--prune-stale``, ``--emit-fault-sites`` / ``--check-fault-sites``).

Each bad/good fixture pair forces one real defect class end to end: a
blocking call below an async handler, a worker-side ``unlink``, and a
chaos glob that matches no registered site are all demonstrably caught,
while the good twins (and the deliberately *unreachable* decoys) stay
clean — the reachability classification, not a grep, is what fires.
"""

import json

import pytest

from repro.lintkit import lint_paths
from repro.lintkit.callgraph import analyze
from repro.lintkit.cli import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main

from .conftest import PROJ, run_lint

SRV = "src/repro/srv"
POOL = "src/repro/pool"
CHAOS = "src/repro/chaos"
CORE = "src/repro/core"
ROOT = ["--root", str(PROJ)]


class TestCallGraph:
    def test_reachability_classification(self):
        _, contexts = lint_paths([PROJ / SRV, PROJ / POOL], PROJ)
        graph = analyze(contexts)
        # Loop side: the async handler seeds, its sync helper inherits.
        assert "repro.srv.bad_handler.handle_request" in graph.loop_seeds
        assert "repro.srv.bad_handler._load_config" in graph.loop_reachable
        # Fork side: Process(target=...) and .submit payloads seed.
        assert "repro.pool.bad_worker._worker_main" in graph.fork_seeds
        assert "repro.srv.bad_handler._solve" in graph.fork_reachable
        # The decoys are reachable from nothing.
        decoy = "repro.srv.good_handler._offline_maintenance"
        assert decoy not in graph.loop_reachable
        assert decoy not in graph.fork_reachable
        assert (
            "repro.pool.good_worker._audit_locked"
            not in graph.fork_reachable
        )

    def test_chain_is_evidence_not_guess(self):
        _, contexts = lint_paths([PROJ / SRV], PROJ)
        graph = analyze(contexts)
        chain = graph.chain("repro.srv.bad_handler._load_config", "loop")
        assert "handle_request" in chain and "_load_config" in chain


class TestAsyncBlocking:  # RPL007
    def test_blocking_calls_caught(self):
        findings = run_lint(f"{SRV}/bad_handler.py", select=["RPL007"])
        assert sorted(f.line for f in findings) == [7, 12, 15]
        messages = " ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "open()" in messages
        assert ".result()" in messages
        # Every finding carries the loop-reachability chain as evidence.
        assert all("handle_request" in f.message for f in findings)

    def test_executor_payload_is_off_loop(self):
        # _solve blocks too, but it runs inside the executor — the
        # structural exemption: a .submit() argument is not a call edge.
        findings = run_lint(f"{SRV}/bad_handler.py", select=["RPL007"])
        assert 20 not in {f.line for f in findings}

    def test_good_handler_clean(self):
        assert run_lint(f"{SRV}/good_handler.py", select=["RPL007"]) == []


class TestForkSafety:  # RPL008
    def test_module_handle_and_hostile_param_caught(self):
        findings = run_lint(f"{POOL}/bad_worker.py", select=["RPL008"])
        assert sorted(f.line for f in findings) == [10, 11]
        messages = " ".join(f.message for f in findings)
        assert "_LOCK" in messages
        assert "threading.Event" in messages

    def test_child_local_lock_and_decoy_clean(self):
        assert run_lint(f"{POOL}/good_worker.py", select=["RPL008"]) == []


class TestShmLifecycle:  # RPL009
    def test_worker_create_unlink_and_parent_leak_caught(self):
        findings = run_lint(f"{POOL}/bad_worker.py", select=["RPL009"])
        assert sorted(f.line for f in findings) == [12, 14, 18]
        messages = " ".join(f.message for f in findings)
        assert "unlink" in messages
        assert "leaks" in messages

    def test_parent_owns_unlink_protocol_clean(self):
        assert run_lint(f"{POOL}/good_worker.py", select=["RPL009"]) == []


class TestFaultSites:  # RPL010
    def test_unmatched_glob_nonliteral_site_and_json_caught(self):
        findings = run_lint(CHAOS, select=["RPL010"])
        assert sorted(f.line for f in findings) == [7, 10, 12]
        assert all(f.path.endswith("bad_sites.py") for f in findings)
        messages = " ".join(f.message for f in findings)
        assert "string literal" in messages
        assert "fixture.pool.strat" in messages
        assert "fixture.nope.*" in messages

    def test_glob_checks_need_a_registry(self):
        # Linting only the bad file registers no sites, so glob
        # validation has nothing to validate against: only the
        # non-literal site fires.
        findings = run_lint(f"{CHAOS}/bad_sites.py", select=["RPL010"])
        assert [f.line for f in findings] == [7]


class TestDeadlineCoverage:  # RPL011
    def test_unchecked_loops_caught(self):
        findings = run_lint(f"{CORE}/bad_deadline.py", select=["RPL011"])
        assert sorted(f.line for f in findings) == [6, 8]

    def test_check_forward_noqa_and_constant_covered(self):
        assert run_lint(f"{CORE}/good_deadline.py", select=["RPL011"]) == []


class TestExplain:
    @pytest.mark.parametrize("code", ["RPL001", "RPL007", "RPL011"])
    def test_explains_every_rule(self, code, capsys):
        assert main(["--explain", code]) == EXIT_OK
        out = capsys.readouterr().out
        assert code in out
        assert "Triggers:" in out
        assert "Passes:" in out

    def test_unknown_code_is_usage_error(self, capsys):
        assert main(["--explain", "RPL999"]) == EXIT_USAGE
        assert "unknown rule code" in capsys.readouterr().err


class TestPruneStale:
    def test_drops_dead_entries_keeps_live(self, tmp_path, capsys):
        bad = str(PROJ / CORE / "bad_deadline.py")
        baseline = tmp_path / "baseline.json"
        assert main([bad, *ROOT, "--baseline", str(baseline),
                     "--write-baseline"]) == EXIT_OK
        payload = json.loads(baseline.read_text())
        live = len(payload["entries"])
        assert live > 0
        payload["entries"].append({
            "fingerprint": "deadbeefdeadbeef",
            "code": "RPL011",
            "path": "src/repro/core/gone.py",
            "line_text": "while gone:",
            "count": 3,
            "justification": "kept so pruning has something to prune",
        })
        baseline.write_text(json.dumps(payload))
        assert main([bad, *ROOT, "--baseline", str(baseline),
                     "--prune-stale"]) == EXIT_OK
        assert "stale occurrence(s) removed" in capsys.readouterr().out
        pruned = json.loads(baseline.read_text())
        assert len(pruned["entries"]) == live
        assert all(
            e["fingerprint"] != "deadbeefdeadbeef"
            for e in pruned["entries"]
        )
        # Pruning is idempotent and the gate now passes clean.
        assert main([bad, *ROOT, "--baseline", str(baseline),
                     "--strict-baseline"]) == EXIT_OK

    def test_needs_an_existing_baseline(self, tmp_path, capsys):
        bad = str(PROJ / CORE / "bad_deadline.py")
        missing = tmp_path / "nope.json"
        assert main([bad, *ROOT, "--baseline", str(missing),
                     "--prune-stale"]) == EXIT_USAGE
        assert "existing baseline" in capsys.readouterr().err


class TestFaultSiteRegistry:
    def test_emit_then_check_roundtrip(self, tmp_path, capsys):
        registry = tmp_path / "fault_sites.md"
        chaos = str(PROJ / CHAOS)
        assert main([chaos, *ROOT,
                     "--emit-fault-sites", str(registry)]) == EXIT_OK
        assert "2 registered site(s)" in capsys.readouterr().out
        text = registry.read_text()
        assert "`fixture.pool.start`" in text
        assert "`fixture.pool.result`" in text
        assert main([chaos, *ROOT,
                     "--check-fault-sites", str(registry)]) == EXIT_OK

    def test_check_fails_when_stale(self, tmp_path, capsys):
        registry = tmp_path / "fault_sites.md"
        chaos = str(PROJ / CHAOS)
        assert main([chaos, *ROOT,
                     "--emit-fault-sites", str(registry)]) == EXIT_OK
        registry.write_text(registry.read_text() + "drift\n")
        assert main([chaos, *ROOT,
                     "--check-fault-sites", str(registry)]) == EXIT_FINDINGS
        assert "stale" in capsys.readouterr().err
