"""Rule-plugin registry: registration contract and rule selection."""

import pytest

from repro.lintkit import all_rules, get_rule
from repro.lintkit.registry import Rule, _RULES, register, select_rules


class TestBuiltinRules:
    def test_five_repo_rules_registered(self):
        codes = [cls.code for cls in all_rules()]
        for expected in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert expected in codes
        assert codes == sorted(codes)

    def test_every_rule_documents_itself(self):
        for cls in all_rules():
            assert cls.code.startswith("RPL")
            assert cls.name
            assert len(cls.description) > 20

    def test_get_rule(self):
        assert get_rule("RPL001").name == "unit-literal"
        with pytest.raises(KeyError):
            get_rule("RPL999")


class TestRegister:
    def test_duplicate_code_rejected(self):
        class Impostor(Rule):
            code = "RPL001"
            name = "impostor"
            description = "claims an existing code"

        with pytest.raises(ValueError, match="duplicate rule code"):
            register(Impostor)

    def test_missing_code_rejected(self):
        class Nameless(Rule):
            description = "has no code"

        with pytest.raises(ValueError, match="has no code"):
            register(Nameless)

    def test_custom_rule_registers_and_unregisters(self):
        class Custom(Rule):
            code = "RPL901"
            name = "custom"
            description = "a test-only rule to prove the plugin path"

        try:
            register(Custom)
            assert get_rule("RPL901") is Custom
            instances = select_rules(select=["RPL901"])
            assert len(instances) == 1 and isinstance(instances[0], Custom)
        finally:
            _RULES.pop("RPL901", None)


class TestSelectRules:
    def test_fresh_instances_per_run(self):
        first = select_rules(select=["RPL002"])
        second = select_rules(select=["RPL002"])
        assert first[0] is not second[0]

    def test_select_then_ignore(self):
        active = select_rules(
            select=["RPL001", "RPL003"], ignore=["RPL003"]
        )
        assert [r.code for r in active] == ["RPL001"]

    def test_unknown_codes_raise(self):
        with pytest.raises(KeyError):
            select_rules(select=["RPL777"])
        with pytest.raises(KeyError):
            select_rules(ignore=["RPL777"])
