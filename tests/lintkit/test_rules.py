"""Per-rule behaviour on the fixture mini-repo: every rule has at least
one fixture that triggers it and one that deliberately avoids it."""

from collections import Counter

from .conftest import run_lint


def codes(findings):
    return [f.code for f in findings]


class TestRPL001UnitLiterals:
    def test_flags_multiplicative_conversion_literals(self):
        findings = run_lint("bad_literals.py", select=["RPL001"])
        assert codes(findings) == ["RPL001"] * 4
        assert [f.line for f in findings] == [5, 6, 7, 8]

    def test_exempts_tolerances_counts_and_magnitudes(self):
        findings = run_lint("bad_literals.py", select=["RPL001"])
        flagged_lines = {f.line for f in findings}
        # non_violations() body: int counts, additive tolerances, 2e-6,
        # and a bare constant — none may appear.
        assert flagged_lines.isdisjoint(range(12, 19))

    def test_units_module_is_exempt(self):
        assert run_lint("src/repro/units.py", select=["RPL001"]) == []

    def test_messages_point_at_repro_units(self):
        findings = run_lint("bad_literals.py", select=["RPL001"])
        assert all("repro.units" in f.message for f in findings)


class TestRPL002Dimensions:
    def test_flags_mismatched_bindings(self):
        findings = run_lint("src/repro/delay/models.py", select=["RPL002"])
        assert codes(findings) == ["RPL002"] * 4

    def test_dimension_vs_scale_messages(self):
        findings = run_lint("src/repro/delay/models.py", select=["RPL002"])
        messages = " | ".join(f.message for f in findings)
        assert "dimension mismatch (time vs length)" in messages
        assert "dimension mismatch (frequency vs length)" in messages
        assert "unit-scale mismatch (_um vs _m)" in messages
        # the suffix-returning assignment check
        assert "assigned to 'span2_m'" in messages

    def test_matching_and_unsuffixed_bindings_pass(self):
        findings = run_lint("src/repro/delay/models.py", select=["RPL002"])
        lines = {f.line for f in findings}
        assert lines == {17, 18, 19, 21}  # exactly the bad bindings
        assert 15 not in lines  # wire_delay_s(span_m): suffix matches
        assert 16 not in lines  # wire_delay_s(load): unsuffixed arg
        assert 20 not in lines  # delay_s = wire_delay_s(...): suffix matches


class TestRPL003Determinism:
    def test_flags_all_nondeterminism_classes(self):
        findings = run_lint(
            "src/repro/core/bad_determinism.py", select=["RPL003"]
        )
        assert len(findings) == 11
        messages = " | ".join(f.message for f in findings)
        assert "wall-clock read 'time.time()'" in messages
        assert "wall-clock read 'now()'" in messages
        assert "process-global RNG call 'random.random()'" in messages
        assert "numpy global-RNG call 'np.random.rand()'" in messages
        assert "unseeded 'random.Random()'" in messages
        assert "unseeded 'np.random.default_rng()'" in messages
        assert "SystemRandom" in messages
        assert "iterating a set" in messages
        assert "list(set(...))" in messages

    def test_approved_spellings_pass(self):
        assert (
            run_lint("src/repro/core/good_determinism.py", select=["RPL003"])
            == []
        )

    def test_out_of_scope_module_ignored(self):
        # bad_literals.py is not under a scoped package: even a wall
        # clock there would be out of scope for this rule.
        assert run_lint("bad_literals.py", select=["RPL003"]) == []


class TestRPL004FacadeBoundary:
    def test_flags_relative_internal_imports(self):
        findings = run_lint(
            "src/repro/analysis/bad_caller.py", select=["RPL004"]
        )
        assert codes(findings) == ["RPL004"] * 2
        messages = " | ".join(f.message for f in findings)
        assert "'repro.core.dp'" in messages
        assert "'repro.assign'" in messages

    def test_flags_absolute_internal_imports(self):
        findings = run_lint("tools/bad_tool.py", select=["RPL004"])
        assert codes(findings) == ["RPL004"] * 2

    def test_facade_and_type_checking_imports_pass(self):
        assert run_lint("tools/good_tool.py", select=["RPL004"]) == []


class TestRPL005ObsGuard:
    def test_flags_registry_imports_and_unguarded_publishes(self):
        findings = run_lint("src/repro/core/bad_obs.py", select=["RPL005"])
        assert codes(findings) == ["RPL005"] * 5
        messages = " | ".join(f.message for f in findings)
        assert "import of 'registry'" in messages
        assert "import of '_REGISTRY'" in messages
        assert "registry().inc(...)" in messages
        assert "registry().observe(...)" in messages
        assert "'_REGISTRY.gauge(...)'" in messages

    def test_guarded_helpers_pass(self):
        assert run_lint("src/repro/core/good_obs.py", select=["RPL005"]) == []


class TestRPL006Swallow:
    def test_flags_all_swallow_shapes(self):
        findings = run_lint(
            "src/repro/runner/bad_swallow.py", select=["RPL006"]
        )
        assert codes(findings) == ["RPL006"] * 5
        messages = " | ".join(f.message for f in findings)
        assert "bare 'except:'" in messages
        assert "swallows the failure" in messages

    def test_surfacing_handlers_pass(self):
        # re-raise, wrap-and-raise, return-with-value, obs counter,
        # wrapper helper (obs_inc), logger, and a narrow except.
        assert (
            run_lint("src/repro/runner/good_swallow.py", select=["RPL006"])
            == []
        )

    def test_out_of_scope_module_ignored(self):
        # core is not a recovery package: a swallow there is RPL006-clean
        # (bad_obs.py has broad handlers only lintkit's scope exempts).
        assert run_lint("src/repro/core/bad_obs.py", select=["RPL006"]) == []
        assert run_lint("bad_literals.py", select=["RPL006"]) == []


class TestRPL000SyntaxError:
    def test_unparsable_file_yields_one_finding(self):
        findings = run_lint("bad_syntax.py")
        assert codes(findings) == ["RPL000"]
        assert "syntax error" in findings[0].message
        assert findings[0].fingerprint  # still baselineable


class TestNoqa:
    def test_inline_suppression_forms(self):
        findings = run_lint("suppressed.py", select=["RPL001"])
        # bare noqa, exact code, and code-in-list all suppress; a noqa
        # naming a different code does not.
        assert len(findings) == 1
        assert findings[0].line == 8


class TestWholeProject:
    def test_by_code_census(self):
        findings = run_lint()  # the entire mini-repo
        assert Counter(f.code for f in findings) == {
            "RPL000": 1,
            "RPL001": 5,
            "RPL002": 4,
            "RPL003": 11,
            "RPL004": 4,
            "RPL005": 5,
            "RPL006": 5,
            "RPL007": 3,
            "RPL008": 2,
            "RPL009": 3,
            "RPL010": 3,
            "RPL011": 2,
        }

    def test_findings_sorted_and_relative(self):
        findings = run_lint()
        keys = [(f.path, f.line, f.col, f.code) for f in findings]
        assert keys == sorted(keys)
        assert all(not f.path.startswith("/") for f in findings)

    def test_ignore_drops_a_code(self):
        findings = run_lint(ignore=["RPL003"])
        assert "RPL003" not in {f.code for f in findings}
