"""Reporter output: the JSON schema is a stable contract (CI uploads it
as an artifact), the text reporter is the human gate output."""

import json

from repro.lintkit.baseline import BaselineEntry
from repro.lintkit.context import Finding
from repro.lintkit.reporters import JSON_SCHEMA_VERSION, render_json, render_text

F1 = Finding("src/a.py", 3, 4, "RPL001", "msg one").with_fingerprint("x / 1e-9")
F2 = Finding("src/b.py", 7, 0, "RPL003", "msg two").with_fingerprint("time.time()")
STALE = BaselineEntry("deadbeef00000000", "RPL004", "tools/old.py", "import x")


class TestJSONSchema:
    def payload(self):
        report = render_json([F1, F2], files=5, baselined=2, stale=[STALE])
        return json.loads(report)

    def test_top_level_keys(self):
        payload = self.payload()
        assert set(payload) == {
            "version", "tool", "findings", "summary", "stale_baseline"
        }
        assert payload["version"] == JSON_SCHEMA_VERSION == 1
        assert payload["tool"] == "repro.lintkit"

    def test_finding_entries(self):
        payload = self.payload()
        assert payload["findings"][0] == {
            "code": "RPL001",
            "path": "src/a.py",
            "line": 3,
            "col": 4,
            "message": "msg one",
            "fingerprint": F1.fingerprint,
        }

    def test_summary_accounting(self):
        summary = self.payload()["summary"]
        assert summary == {
            "files": 5,
            "total": 4,  # 2 new + 2 baselined
            "new": 2,
            "baselined": 2,
            "by_code": {"RPL001": 1, "RPL003": 1},
        }

    def test_stale_baseline_section(self):
        payload = self.payload()
        assert payload["stale_baseline"] == [
            {
                "fingerprint": "deadbeef00000000",
                "path": "tools/old.py",
                "code": "RPL004",
            }
        ]

    def test_clean_run(self):
        payload = json.loads(render_json([], files=3, baselined=0))
        assert payload["findings"] == []
        assert payload["summary"]["total"] == 0
        assert payload["stale_baseline"] == []


class TestText:
    def test_one_line_per_finding_plus_summary(self):
        report = render_text([F1, F2], files=5, baselined=2, stale=[STALE])
        lines = report.splitlines()
        assert lines[0] == "src/a.py:3:5: RPL001 msg one"
        assert lines[1] == "src/b.py:7:1: RPL003 msg two"
        assert "2 finding(s) in 5 file(s), 2 baselined" in lines[2]
        assert "[RPL001: 1, RPL003: 1]" in lines[2]
        assert "stale baseline entry deadbeef00000000" in lines[3]

    def test_clean_summary(self):
        report = render_text([], files=7, baselined=0)
        assert report == "0 finding(s) in 7 file(s)"
