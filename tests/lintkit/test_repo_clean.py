"""The repository gates itself: the tree the CI lint job checks must be
clean against the committed baseline.  This is the same invocation as
``python -m repro.lintkit src tests tools`` from the repo root."""

from pathlib import Path

from repro.lintkit.cli import EXIT_OK, main

REPO = Path(__file__).resolve().parents[2]


def test_repo_is_clean_under_committed_baseline(capsys):
    paths = [str(REPO / p) for p in ("src", "tests", "tools")]
    code = main([*paths, "--root", str(REPO), "--strict-baseline"])
    out = capsys.readouterr().out
    assert code == EXIT_OK, f"lint gate failed:\n{out}"
    assert out.startswith("0 finding(s)")


def test_fixture_violations_are_walk_skipped(capsys):
    """The deliberately-violating fixture files must never leak into the
    repo gate: directory walks skip ``fixtures`` directories."""
    code = main([str(REPO / "tests" / "lintkit"), "--root", str(REPO),
                 "--no-baseline"])
    assert code == EXIT_OK
