"""CLI contract: exit codes, selection, baseline workflow, JSON output."""

import json

from repro.lintkit.cli import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main

from .conftest import PROJ

BAD = str(PROJ / "bad_literals.py")
GOOD = str(PROJ / "src" / "repro" / "core" / "good_determinism.py")
ROOT = ["--root", str(PROJ)]


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main([GOOD, *ROOT]) == EXIT_OK
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([BAD, *ROOT]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RPL001" in out
        assert "4 finding(s)" in out

    def test_missing_path_exits_two(self, capsys):
        assert main([str(PROJ / "nope.py"), *ROOT]) == EXIT_USAGE
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_code_exits_two(self, capsys):
        assert main([BAD, *ROOT, "--select", "RPL999"]) == EXIT_USAGE
        assert "unknown rule code" in capsys.readouterr().err


class TestSelection:
    def test_select_narrows(self, capsys):
        assert main([BAD, *ROOT, "--select", "RPL003"]) == EXIT_OK

    def test_ignore_drops(self, capsys):
        assert main([BAD, *ROOT, "--ignore", "RPL001"]) == EXIT_OK


class TestListRules:
    def test_lists_all_codes(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert code in out


class TestJSONOutput:
    def test_report_written_to_file(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main(
            [BAD, *ROOT, "--format", "json", "--output", str(report)]
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(report.read_text())
        assert payload["tool"] == "repro.lintkit"
        assert payload["summary"]["new"] == 4
        assert payload["summary"]["by_code"] == {"RPL001": 4}

    def test_stdout_json(self, capsys):
        assert main([BAD, *ROOT, "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1


class TestBaselineWorkflow:
    def test_write_then_gate_passes(self, tmp_path, capsys):
        bl = tmp_path / "bl.json"
        assert main([BAD, *ROOT, "--baseline", str(bl), "--write-baseline"]) == EXIT_OK
        assert "covering 4 finding(s)" in capsys.readouterr().out

        assert main([BAD, *ROOT, "--baseline", str(bl)]) == EXIT_OK
        assert "4 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        bl = tmp_path / "bl.json"
        main([BAD, *ROOT, "--baseline", str(bl), "--write-baseline"])
        capsys.readouterr()
        code = main([BAD, *ROOT, "--baseline", str(bl), "--no-baseline"])
        assert code == EXIT_FINDINGS

    def test_stale_entries_warn_then_fail_strict(self, tmp_path, capsys):
        bl = tmp_path / "bl.json"
        main([BAD, *ROOT, "--baseline", str(bl), "--write-baseline"])
        capsys.readouterr()
        # Gate a clean file against the stale baseline.
        assert main([GOOD, *ROOT, "--baseline", str(bl)]) == EXIT_OK
        assert "stale baseline entry" in capsys.readouterr().out
        assert (
            main([GOOD, *ROOT, "--baseline", str(bl), "--strict-baseline"])
            == EXIT_FINDINGS
        )

    def test_regeneration_preserves_justifications(self, tmp_path, capsys):
        bl = tmp_path / "bl.json"
        main([BAD, *ROOT, "--baseline", str(bl), "--write-baseline"])
        payload = json.loads(bl.read_text())
        payload["entries"][0]["justification"] = "kept on purpose"
        bl.write_text(json.dumps(payload))

        main([BAD, *ROOT, "--baseline", str(bl), "--write-baseline"])
        regenerated = json.loads(bl.read_text())
        kept = [
            e for e in regenerated["entries"]
            if e.get("justification") == "kept on purpose"
        ]
        assert len(kept) == 1

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        bl = tmp_path / "bl.json"
        bl.write_text("{broken")
        assert main([BAD, *ROOT, "--baseline", str(bl)]) == EXIT_USAGE


class TestModuleEntrypoint:
    def test_python_dash_m_runs(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lintkit", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "RPL001" in proc.stdout
