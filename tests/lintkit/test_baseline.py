"""Baseline round-trip, capacity semantics, staleness, justifications."""

import json

import pytest

from repro.lintkit import Baseline, lint_paths
from repro.lintkit.baseline import BaselineEntry, BaselineError

from .conftest import PROJ


def lint_literals():
    findings, contexts = lint_paths(
        [PROJ / "bad_literals.py"], PROJ, select=["RPL001"]
    )
    texts = {
        f.fingerprint: contexts[0].line_text(f.line).strip() for f in findings
    }
    return findings, texts


class TestRoundTrip:
    def test_save_load_apply_absorbs_everything(self, tmp_path):
        findings, texts = lint_literals()
        baseline = Baseline.from_findings(findings, texts)
        path = tmp_path / "bl.json"
        baseline.save(path)

        loaded = Baseline.load(path)
        new, baselined, stale = loaded.apply(findings)
        assert new == []
        assert baselined == len(findings)
        assert stale == []

    def test_fixed_violation_reported_stale(self, tmp_path):
        findings, texts = lint_literals()
        baseline = Baseline.from_findings(findings, texts)
        new, baselined, stale = baseline.apply(findings[:-1])
        assert new == []
        assert baselined == len(findings) - 1
        assert [e.fingerprint for e in stale] == [findings[-1].fingerprint]

    def test_new_violation_not_absorbed(self):
        findings, texts = lint_literals()
        baseline = Baseline.from_findings(findings[:-1], texts)
        new, baselined, stale = baseline.apply(findings)
        assert [f.fingerprint for f in new] == [findings[-1].fingerprint]


class TestFingerprints:
    def test_line_number_independent(self):
        from repro.lintkit.context import Finding

        a = Finding("p.py", 3, 0, "RPL001", "m").with_fingerprint("x = y / 1e-9")
        b = Finding("p.py", 99, 4, "RPL001", "m").with_fingerprint(
            "  x = y / 1e-9  "
        )
        assert a.fingerprint == b.fingerprint

    def test_sensitive_to_code_path_and_text(self):
        from repro.lintkit.context import Finding

        base = Finding("p.py", 1, 0, "RPL001", "m").with_fingerprint("line")
        assert (
            Finding("q.py", 1, 0, "RPL001", "m").with_fingerprint("line").fingerprint
            != base.fingerprint
        )
        assert (
            Finding("p.py", 1, 0, "RPL003", "m").with_fingerprint("line").fingerprint
            != base.fingerprint
        )


class TestCapacity:
    def test_identical_lines_need_matching_count(self, tmp_path):
        src = tmp_path / "dupes.py"
        src.write_text(
            "def f(v):\n"
            "    a = v / 1e-9\n"
            "    a = v / 1e-9\n"
            "    return a\n"
        )
        findings, _ = lint_paths([src], tmp_path, select=["RPL001"])
        assert len(findings) == 2
        fp = findings[0].fingerprint
        assert findings[1].fingerprint == fp  # identical text, one identity

        one = Baseline(entries=[BaselineEntry(fp, "RPL001", "dupes.py", "", count=1)])
        new, baselined, stale = one.apply(findings)
        assert len(new) == 1 and baselined == 1

        two = Baseline(entries=[BaselineEntry(fp, "RPL001", "dupes.py", "", count=2)])
        new, baselined, stale = two.apply(findings)
        assert new == [] and baselined == 2 and stale == []


class TestJustifications:
    def test_carried_over_on_regeneration(self):
        findings, texts = lint_literals()
        first = Baseline.from_findings(findings, texts)
        first.entries[0].justification = "because physics"
        regenerated = Baseline.from_findings(findings, texts, previous=first)
        by_fp = {e.fingerprint: e for e in regenerated.entries}
        assert by_fp[first.entries[0].fingerprint].justification == "because physics"

    def test_serialized_only_when_present(self, tmp_path):
        entry = BaselineEntry("abcd", "RPL001", "p.py", "x = 1e-9 * y")
        assert "justification" not in entry.to_json()
        entry.justification = "why"
        assert entry.to_json()["justification"] == "why"


class TestErrors:
    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bl.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "bl.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "bl.json"
        path.write_text(json.dumps({"version": 1, "entries": [{"code": "X"}]}))
        with pytest.raises(BaselineError):
            Baseline.load(path)


class TestCommittedBaseline:
    def test_every_entry_is_justified(self):
        """The repo's own baseline must stay fully justified — a bare
        grandfathered violation is indistinguishable from an ignored
        one."""
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        baseline = Baseline.load(repo / "lint_baseline.json")
        assert baseline.entries, "committed baseline unexpectedly empty"
        unjustified = [
            e.fingerprint for e in baseline.entries if not e.justification.strip()
        ]
        assert unjustified == []
