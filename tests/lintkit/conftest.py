"""Shared fixtures for the lintkit test suite.

The fixture mini-repo under ``fixtures/proj/`` mirrors the real src
layout (``src/repro/...``, ``tools/``) so module- and path-scoped rules
fire exactly as they do on the repository itself.  The ``fixtures``
directory is on the engine's walk skip-list; tests lint these files by
passing explicit paths, which bypasses the skip.
"""

from pathlib import Path

import pytest

from repro.lintkit import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
PROJ = FIXTURES / "proj"


@pytest.fixture(scope="session")
def proj_root():
    return PROJ


def run_lint(*rel_paths, select=None, ignore=None, root=PROJ):
    """Lint fixture files (paths relative to the mini-repo root)."""
    paths = [root / p for p in rel_paths] if rel_paths else [root]
    findings, contexts = lint_paths(paths, root, select=select, ignore=ignore)
    return findings


@pytest.fixture
def lint():
    return run_lint
