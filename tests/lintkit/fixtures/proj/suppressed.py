"""noqa fixture: inline suppression forms."""


def suppressed(feature, area, volume):
    a = feature / 1e-9  # noqa
    b = area * 1e6  # noqa: RPL001
    c = volume * 1e12  # noqa: RPL002, RPL001
    d = feature * 1e-6  # noqa: RPL004  (wrong code: finding survives)
    return a, b, c, d
