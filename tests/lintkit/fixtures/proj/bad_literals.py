"""RPL001 fixture: every violation and every deliberate non-violation."""


def violations(feature, area, seconds, farads):
    a = feature / 1e-9        # flagged: division by a conversion literal
    b = area * 1e6            # flagged: multiplication
    c = seconds * -1e12       # flagged: sign looked through
    d = 1e-15 * farads        # flagged: literal on the left
    return a, b, c, d


def non_violations(count, low, capacity, value):
    e = count * 1000000       # int literal: a count, never flagged
    f = low - 1e-12           # additive tolerance, exempt
    g = capacity * (1 + 1e-12)  # tolerance inside the product, exempt
    h = value * 2e-6          # not a conversion magnitude
    i = 1e-9                  # bare constant, no arithmetic
    return e, f, g, h, i
