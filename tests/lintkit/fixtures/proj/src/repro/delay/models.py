"""RPL002 fixture: unit-suffixed model-layer signatures (the pre-pass
seeds its database from these definitions) plus good and bad call sites.
"""


def wire_delay_s(length_m, clock_hz=None):
    return length_m * 1.0 if clock_hz is None else length_m / clock_hz


def _private_helper(length_m):  # underscore-private: never enters the DB
    return length_m


def call_sites(span_m, rise_time_s, length_um, load, clock_hz):
    good = wire_delay_s(span_m)                 # suffix matches: fine
    also_good = wire_delay_s(load)              # unsuffixed arg: fine
    bad_dim = wire_delay_s(rise_time_s)         # flagged: time into length
    bad_kw = wire_delay_s(length_m=clock_hz)    # flagged: frequency into length
    bad_scale = wire_delay_s(length_um)         # flagged: _um into _m (scale)
    delay_s = wire_delay_s(span_m)              # return suffix matches: fine
    span2_m = wire_delay_s(span_m)              # flagged: time result into _m name
    return good, also_good, bad_dim, bad_kw, bad_scale, delay_s, span2_m
