"""RPL006 non-violations: broad catches that surface the failure."""


def bare_except_reraise(worker):
    try:
        worker.close()
    except:  # noqa: E722
        raise


def broad_except_wraps(conn):
    try:
        conn.send(b"bye")
    except Exception as exc:
        raise RuntimeError(f"send failed: {exc}") from exc


def broad_except_returns_value(path):
    try:
        return path.read_text()
    except Exception as exc:
        return ("error", type(exc).__name__)


def broad_except_records(metrics, task):
    try:
        task.run()
    except Exception:
        metrics.inc("runner.task_errors")


def broad_except_wrapper_helper(obs_inc, task):
    try:
        task.run()
    except Exception:
        obs_inc("runner.task_errors")


def broad_except_logs(logger, task):
    try:
        task.run()
    except BaseException:
        logger.exception("task blew up")
        raise


def narrow_except_is_fine(path):
    try:
        return path.stat().st_size
    except OSError:
        pass
    return 0
