"""RPL006 triggers: swallowed exceptions inside a recovery package."""


def bare_except_pass(worker):
    try:
        worker.close()
    except:  # noqa: E722  (still an RPL006 violation)
        pass


def broad_except_pass(conn):
    try:
        conn.send(b"bye")
    except Exception:
        pass


def base_exception_assignment(path):
    result = None
    try:
        result = path.read_text()
    except BaseException:
        result = None
    return result


def tuple_containing_exception(queue):
    for item in queue:
        try:
            item.flush()
        except (ValueError, Exception):
            continue


def broad_except_unapproved_call(exc_log, task):
    try:
        task.run()
    except Exception as exc:
        exc_log.stash(str(exc))
