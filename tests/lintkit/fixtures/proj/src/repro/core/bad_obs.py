"""RPL005 fixture: unguarded observability in a hot path."""

from repro.obs.metrics import registry  # flagged: registry import
from repro.obs.metrics import _REGISTRY  # flagged: private global import


def publish(n):
    registry().inc("solver.calls")        # flagged: unguarded publish
    registry().observe("solver.ms", n)    # flagged: unguarded publish
    _REGISTRY.gauge("solver.depth", n)    # flagged: private-global publish
