"""Fixture: problem-sized loops that never check the deadline (RPL011)."""


def relax_all(pairs, deadline):
    best = 0.0
    for pair in pairs:
        best = max(best, pair.cost)
    while best > 0.5:
        best = best / 2.0
    return best
