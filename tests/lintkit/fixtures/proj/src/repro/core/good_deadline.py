"""Fixture: every loop covered — check, forward, noqa, or constant."""

from repro.core.dp import check_deadline


def relax_all(pairs, deadline):
    best = 0.0
    for pair in pairs:
        check_deadline(deadline, where="fixture relax")
        for candidate in pair:
            best = max(best, candidate)
    return best


def merge(groups, deadline):
    total = 0.0
    for group in groups:
        total += accumulate(group, deadline)
    for knob in ("alpha", "beta"):
        total += len(knob)
    for header in range(3):  # noqa: RPL011 — three header rows, fixed
        total += header
    return total


def accumulate(group, deadline):
    return len(group)
