"""RPL003 fixture: every class of nondeterminism the rule flags."""

import random
import time
from time import time as now

import numpy as np


def wall_clock():
    a = time.time()          # flagged: wall clock
    b = time.time_ns()       # flagged: wall clock
    c = now()                # flagged: from-imported wall clock
    return a, b, c


def global_rng():
    x = random.random()      # flagged: process-global RNG
    y = random.randint(0, 9)  # flagged: process-global RNG
    z = np.random.rand(3)    # flagged: numpy legacy global RNG
    return x, y, z


def unseeded():
    r = random.Random()          # flagged: unseeded constructor
    g = np.random.default_rng()  # flagged: unseeded constructor
    s = random.SystemRandom()    # flagged: nondeterministic by design
    return r, g, s


def set_order(items):
    for item in {1, 2, 3}:   # flagged: set iteration
        pass
    order = list(set(items))  # flagged: hash-order materialisation
    return order
