"""RPL003 fixture: the approved spellings — none of these are flagged."""

import random
import time

import numpy as np


def deadlines():
    start = time.monotonic()      # deadlines/metrics are fine
    lap = time.perf_counter()
    return start, lap


def seeded(seed):
    r = random.Random(seed)       # seeded constructor passes
    g = np.random.default_rng(seed)
    return r.random(), g.random()


def pinned_order(items):
    ordered = sorted(set(items))  # sorted() pins the order
    for item in ordered:
        pass
    return ordered
