"""RPL005 fixture: the guarded helpers — none of these are flagged."""

from repro.obs.metrics import inc, metrics_enabled, observe


def publish(n):
    inc("solver.calls")            # guarded module helper
    observe("solver.ms", n)
    if metrics_enabled():          # explicit gate is also fine
        observe("solver.extra", n)
