"""RPL004 fixture: relative internal imports from the analysis layer."""

from ..core.dp import solve_rank_dp  # flagged: relative spelling of repro.core
from .. import assign  # flagged: `from .. import assign` form

__all__ = ["solve_rank_dp", "assign"]
