"""RPL001 fixture: the defining module is exempt by design."""

NM = 1.0e-9
UM = 1.0e-6


def to_um(meters):
    return meters / 1e-6  # not flagged: repro.units defines conversions
