"""Fixture: literal sites and globs that match them (RPL010-clean)."""

from repro.faultkit import FaultSpec, fault_point


def guarded_region(payload):
    fault_point("fixture.pool.start", point=payload)
    fault_point("fixture.pool.result", point=payload)


SCHEDULE = FaultSpec(site="fixture.pool.*", kind="raise")

INLINE = '[{"site": "fixture.pool.result", "kind": "raise"}]'
