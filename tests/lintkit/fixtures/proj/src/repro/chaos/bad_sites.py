"""Fixture: chaos schedules that silently test nothing (RPL010)."""

from repro.faultkit import FaultSpec, fault_point


def flaky_region(site_name, payload):
    fault_point(site_name, point=payload)


BROKEN_SCHEDULE = FaultSpec(site="fixture.pool.strat", kind="raise")

INLINE = '[{"site": "fixture.nope.*", "kind": "raise"}]'
