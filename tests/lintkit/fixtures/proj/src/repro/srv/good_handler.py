"""Fixture: a handler that keeps the event loop free (RPL007-clean)."""

import asyncio
import time


async def handle_request(request, pool):
    await asyncio.sleep(0.05)
    future = pool.submit(_solve, request)
    return await asyncio.wrap_future(future)


def _solve(request):
    return request


def _offline_maintenance(path):
    """Decoy: blocking, but unreachable from any async def."""
    time.sleep(0.2)
    with open(path) as handle:
        return handle.read()
