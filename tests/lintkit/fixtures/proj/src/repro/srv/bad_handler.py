"""Fixture: an asyncio handler that blocks the event loop (RPL007)."""

import time


def _load_config(path):
    with open(path) as handle:
        return handle.read()


async def handle_request(request, pool):
    time.sleep(0.05)
    config = _load_config(request.path)
    future = pool.submit(_solve, request)
    return config, future.result()


def _solve(request):
    # Decoy: executor payload, runs off-loop — must NOT be flagged.
    time.sleep(1.0)
    return request
