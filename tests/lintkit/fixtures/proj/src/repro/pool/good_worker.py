"""Fixture: plain-data handoff and parent-owned unlink (clean)."""

import threading
from multiprocessing import Process
from multiprocessing.shared_memory import SharedMemory

_LOCK = threading.Lock()


def _worker_main(init_blob: bytes, parent_pid: int) -> None:
    lock = threading.Lock()
    with lock:
        segment = SharedMemory(name="tables")
        segment.close()


def start_pool(blob):
    worker = Process(target=_worker_main, args=(blob, 1))
    worker.start()
    _publish(blob)


def _publish(blob):
    segment = SharedMemory(name="tables", create=True, size=len(blob))
    try:
        segment.buf[: len(blob)] = blob
    except BaseException:
        segment.close()
        segment.unlink()
        raise


def _audit_locked(path):
    """Decoy: touches the module lock but is never fork-reachable."""
    with _LOCK:
        return path
