"""Fixture: fork-hostile worker state and shm misuse (RPL008/RPL009)."""

import threading
from multiprocessing import Process
from multiprocessing.shared_memory import SharedMemory

_LOCK = threading.Lock()


def _worker_main(init_blob: bytes, stop: threading.Event) -> None:
    with _LOCK:
        scratch = SharedMemory(name="scratch", create=True, size=64)
        scratch.close()
        scratch.unlink()


def publish_tables(blob):
    segment = SharedMemory(name="tables", create=True, size=len(blob))
    segment.buf[: len(blob)] = blob
    return segment.name


def start_pool(blob):
    worker = Process(target=_worker_main, args=(blob, None))
    worker.start()
