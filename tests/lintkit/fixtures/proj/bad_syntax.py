def broken(:
    return None
