"""RPL004 fixture: absolute internal imports from the tools layer."""

import repro.core  # flagged
from repro.assign.tables import AssignmentTables  # flagged

__all__ = ["repro", "AssignmentTables"]
