"""RPL004 fixture: facade imports and TYPE_CHECKING-only internals pass."""

from typing import TYPE_CHECKING

from repro.api import compute_rank  # the facade is the supported surface

if TYPE_CHECKING:
    from repro.core.problem import RankProblem  # typing-only: exempt
    from repro.assign.tables import AssignmentTables  # typing-only: exempt


def run(problem: "RankProblem") -> object:
    return compute_rank(problem)
