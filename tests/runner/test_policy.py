"""Tests for the retry policy and its deterministic degradation ladder."""

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    RankComputationError,
    RunnerError,
)
from repro.runner import RetryPolicy
from repro.runner.policy import scaled_bunch_size


class TestValidation:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_s is None

    def test_rejects_zero_attempts(self):
        with pytest.raises(RunnerError):
            RetryPolicy(max_attempts=0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(RunnerError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(RunnerError):
            RetryPolicy(timeout_s=-1.0)

    def test_rejects_nonpositive_bunch_scale(self):
        with pytest.raises(RunnerError):
            RetryPolicy(bunch_scale=0.0)


class TestDegradationLadder:
    def test_first_attempt_never_degrades(self):
        assert RetryPolicy(max_attempts=3).degradation(0) == {}

    def test_ladder_is_deterministic_and_geometric(self):
        policy = RetryPolicy(max_attempts=4, bunch_scale=2.0)
        assert policy.degradation(1) == {"bunch_scale": 2.0}
        assert policy.degradation(2) == {"bunch_scale": 4.0}
        assert policy.degradation(3) == {"bunch_scale": 8.0}
        # No randomness: repeated calls agree exactly.
        assert policy.degradation(2) == policy.degradation(2)

    def test_unit_scale_means_no_degradation(self):
        assert RetryPolicy(max_attempts=3, bunch_scale=1.0).degradation(2) == {}


class TestScaledBunchSize:
    def test_none_stays_none(self):
        assert scaled_bunch_size(None, {"bunch_scale": 4.0}) is None

    def test_no_degradation_is_identity(self):
        assert scaled_bunch_size(5000, {}) == 5000

    def test_scales_and_floors_at_one(self):
        assert scaled_bunch_size(5000, {"bunch_scale": 2.0}) == 10000
        assert scaled_bunch_size(1, {"bunch_scale": 0.1}) == 1


class TestDeadline:
    def test_no_timeout_means_no_deadline(self):
        assert RetryPolicy().deadline() is None

    def test_deadline_is_now_plus_timeout(self):
        policy = RetryPolicy(timeout_s=10.0)
        assert policy.deadline(now=100.0) == pytest.approx(110.0)


class TestRetryability:
    def test_repro_errors_are_retryable_by_default(self):
        policy = RetryPolicy()
        assert policy.is_retryable(RankComputationError("x"))
        assert policy.is_retryable(DeadlineExceeded("x"))
        assert policy.is_retryable(ConfigurationError("x"))

    def test_programming_errors_are_not(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(KeyError("x"))

    def test_custom_retry_on(self):
        policy = RetryPolicy(retry_on=(ValueError,))
        assert policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(RankComputationError("x"))
