"""Tests for the retry policy and its deterministic degradation ladder."""

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    RankComputationError,
    RunnerError,
)
from repro.runner import RetryPolicy
from repro.runner.policy import scaled_bunch_size


class TestValidation:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_s is None

    def test_rejects_zero_attempts(self):
        with pytest.raises(RunnerError):
            RetryPolicy(max_attempts=0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(RunnerError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(RunnerError):
            RetryPolicy(timeout_s=-1.0)

    def test_rejects_nonpositive_bunch_scale(self):
        with pytest.raises(RunnerError):
            RetryPolicy(bunch_scale=0.0)


class TestDegradationLadder:
    def test_first_attempt_never_degrades(self):
        assert RetryPolicy(max_attempts=3).degradation(0) == {}

    def test_ladder_is_deterministic_and_geometric(self):
        policy = RetryPolicy(max_attempts=4, bunch_scale=2.0)
        assert policy.degradation(1) == {"bunch_scale": 2.0}
        assert policy.degradation(2) == {"bunch_scale": 4.0}
        assert policy.degradation(3) == {"bunch_scale": 8.0}
        # No randomness: repeated calls agree exactly.
        assert policy.degradation(2) == policy.degradation(2)

    def test_unit_scale_means_no_degradation(self):
        assert RetryPolicy(max_attempts=3, bunch_scale=1.0).degradation(2) == {}


class TestScaledBunchSize:
    def test_none_stays_none(self):
        assert scaled_bunch_size(None, {"bunch_scale": 4.0}) is None

    def test_no_degradation_is_identity(self):
        assert scaled_bunch_size(5000, {}) == 5000

    def test_scales_and_floors_at_one(self):
        assert scaled_bunch_size(5000, {"bunch_scale": 2.0}) == 10000
        assert scaled_bunch_size(1, {"bunch_scale": 0.1}) == 1


class TestDeadline:
    def test_no_timeout_means_no_deadline(self):
        assert RetryPolicy().deadline() is None

    def test_deadline_is_now_plus_timeout(self):
        policy = RetryPolicy(timeout_s=10.0)
        assert policy.deadline(now=100.0) == pytest.approx(110.0)


class TestRetryability:
    def test_repro_errors_are_retryable_by_default(self):
        policy = RetryPolicy()
        assert policy.is_retryable(RankComputationError("x"))
        assert policy.is_retryable(DeadlineExceeded("x"))
        assert policy.is_retryable(ConfigurationError("x"))

    def test_programming_errors_are_not(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(KeyError("x"))

    def test_custom_retry_on(self):
        policy = RetryPolicy(retry_on=(ValueError,))
        assert policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(RankComputationError("x"))


class TestBackoff:
    def test_disabled_by_default(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.backoff_delay(1) == 0.0
        assert policy.backoff_budget() == 0.0

    def test_attempt_zero_never_waits(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=1.0)
        assert policy.backoff_delay(0) == 0.0

    def test_exponential_progression_with_ceiling(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_s=1.0, backoff_factor=2.0, backoff_max_s=5.0
        )
        delays = [policy.backoff_delay(a) for a in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(
            max_attempts=3, backoff_s=1.0, jitter=0.5, seed=42
        )
        assert policy.backoff_delay(1, key="p[0]") == policy.backoff_delay(
            1, key="p[0]"
        )
        # Base 1.0, stretched by at most 50%.
        delay = policy.backoff_delay(1, key="p[0]")
        assert 1.0 <= delay <= 1.5

    def test_jitter_varies_across_keys_and_seeds(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=1.0, jitter=0.5, seed=1)
        other_seed = RetryPolicy(
            max_attempts=3, backoff_s=1.0, jitter=0.5, seed=2
        )
        draws = {
            policy.backoff_delay(1, key=f"p[{i}]") for i in range(10)
        } | {other_seed.backoff_delay(1, key="p[0]")}
        assert len(draws) > 1

    def test_budget_bounds_every_jittered_wait(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_s=0.5, backoff_factor=3.0, jitter=0.25,
            seed=7,
        )
        total = sum(
            policy.backoff_delay(a, key="worst-case") for a in range(1, 4)
        )
        assert total <= policy.backoff_budget() + 1e-9

    def test_validation(self):
        with pytest.raises(RunnerError, match="backoff_s"):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(RunnerError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(RunnerError, match="backoff_max_s"):
            RetryPolicy(backoff_max_s=0.0)
        with pytest.raises(RunnerError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(RunnerError, match="hang_grace"):
            RetryPolicy(hang_grace=0.5)
