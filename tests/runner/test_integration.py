"""Harness integration with sweeps, corners, and architecture search.

Includes the PR's acceptance criterion: a sweep where one point raises
``RankComputationError`` completes the other N-1 points under
``keep_going``, records the failure, and ``resume`` recomputes only the
missing point, producing a :class:`SweepResult` identical to an
uninterrupted run.
"""

import pytest

import repro.analysis.corners as corners_mod
import repro.analysis.sweep as sweep_mod
import repro.optimize.search as search_mod
from repro.analysis.corners import STANDARD_CORNERS, rank_across_corners
from repro.analysis.sweep import run_sweep
from repro.errors import RankComputationError, RunnerError
from repro.optimize import DesignSpace, optimize_architecture
from repro.runner import RetryPolicy

FAST = dict(bunch_size=2000, repeater_units=128)
VALUES = [0.2, 0.3, 0.4]


def failing_compute_rank(module, monkeypatch, fail_calls=(), fail_forever=()):
    """Patch ``module.compute_rank`` to fail on chosen call indices or
    whenever the problem's repeater fraction is in ``fail_forever``."""
    real = module.compute_rank
    state = {"calls": 0, "evaluated": []}

    def wrapper(problem, **kwargs):
        index = state["calls"]
        state["calls"] += 1
        state["evaluated"].append(problem.die.repeater_fraction)
        if index in fail_calls or problem.die.repeater_fraction in fail_forever:
            raise RankComputationError(f"injected failure (call {index})")
        return real(problem, **kwargs)

    monkeypatch.setattr(module, "compute_rank", wrapper)
    return state


class TestSweepAcceptance:
    def test_keep_going_completes_other_points_and_records_failure(
        self, small_baseline, monkeypatch
    ):
        failing_compute_rank(sweep_mod, monkeypatch, fail_forever={0.3})
        sweep = run_sweep(
            "R",
            VALUES,
            small_baseline.with_repeater_fraction,
            keep_going=True,
            **FAST,
        )
        assert not sweep.is_complete
        assert sweep.values() == [0.2, 0.4]
        assert sweep.failed_values() == [0.3]
        (failure,) = sweep.failures
        assert failure.error_type == "RankComputationError"
        assert "injected failure" in failure.error_message
        assert sweep.journal.failed == 1

    def test_resume_recomputes_only_missing_point(
        self, small_baseline, monkeypatch, tmp_path
    ):
        path = tmp_path / "ck.json"
        uninterrupted = run_sweep(
            "R", VALUES, small_baseline.with_repeater_fraction, **FAST
        )
        real = sweep_mod.compute_rank
        failing_compute_rank(sweep_mod, monkeypatch, fail_forever={0.3})
        partial = run_sweep(
            "R",
            VALUES,
            small_baseline.with_repeater_fraction,
            keep_going=True,
            checkpoint=path,
            **FAST,
        )
        assert partial.failed_values() == [0.3]
        monkeypatch.setattr(sweep_mod, "compute_rank", real)  # healthy again
        resumed_state = failing_compute_rank(sweep_mod, monkeypatch)
        resumed = run_sweep(
            "R",
            VALUES,
            small_baseline.with_repeater_fraction,
            checkpoint=path,
            resume=True,
            **FAST,
        )
        # Only the missing point was recomputed...
        assert resumed_state["evaluated"] == [0.3]
        # ...and the result is identical to the uninterrupted run.
        assert resumed == uninterrupted
        assert resumed.is_complete
        assert resumed.journal.cached == 2

    def test_strict_mode_raises_with_checkpoint_hint(
        self, small_baseline, monkeypatch, tmp_path
    ):
        path = tmp_path / "ck.json"
        failing_compute_rank(sweep_mod, monkeypatch, fail_forever={0.3})
        with pytest.raises(RunnerError, match="resume"):
            run_sweep(
                "R",
                VALUES,
                small_baseline.with_repeater_fraction,
                checkpoint=path,
                **FAST,
            )
        assert path.exists()

    def test_retry_recovers_transient_failure(
        self, small_baseline, monkeypatch
    ):
        failing_compute_rank(sweep_mod, monkeypatch, fail_calls={1})
        sweep = run_sweep(
            "R",
            VALUES,
            small_baseline.with_repeater_fraction,
            policy=RetryPolicy(max_attempts=2),
            **FAST,
        )
        assert sweep.is_complete
        assert sweep.journal.retries == 1
        # The retry walked the degradation ladder (coarser bunching).
        assert sweep.journal.degradations()


class TestCorners:
    def test_keep_going_skips_failing_corner(
        self, small_baseline, monkeypatch
    ):
        real = corners_mod.compute_rank
        calls = {"n": 0}

        def flaky(problem, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RankComputationError("injected corner failure")
            return real(problem, **kwargs)

        monkeypatch.setattr(corners_mod, "compute_rank", flaky)
        report = rank_across_corners(
            small_baseline, keep_going=True, bunch_size=2000, repeater_units=128
        )
        assert not report.is_complete
        assert len(report.failures) == 1
        assert report.failures[0].key == STANDARD_CORNERS[1].name
        # Sign-off still works over the surviving corners.
        worst_corner, worst_result = report.worst
        assert worst_result.normalized >= 0

    def test_all_corners_failing_has_no_signoff(
        self, small_baseline, monkeypatch
    ):
        monkeypatch.setattr(
            corners_mod,
            "compute_rank",
            lambda problem, **kwargs: (_ for _ in ()).throw(
                RankComputationError("down")
            ),
        )
        report = rank_across_corners(
            small_baseline, keep_going=True, bunch_size=2000, repeater_units=128
        )
        with pytest.raises(RankComputationError):
            report.worst

    def test_corner_resume(self, small_baseline, monkeypatch, tmp_path):
        path = tmp_path / "ck.json"
        real = corners_mod.compute_rank
        calls = {"n": 0}

        def flaky(problem, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RankComputationError("injected")
            return real(problem, **kwargs)

        monkeypatch.setattr(corners_mod, "compute_rank", flaky)
        partial = rank_across_corners(
            small_baseline,
            keep_going=True,
            checkpoint=path,
            bunch_size=2000,
            repeater_units=128,
        )
        monkeypatch.setattr(corners_mod, "compute_rank", real)
        resumed = rank_across_corners(
            small_baseline,
            checkpoint=path,
            resume=True,
            bunch_size=2000,
            repeater_units=128,
        )
        assert resumed.is_complete
        assert resumed.journal.cached == len(STANDARD_CORNERS) - 1
        uninterrupted = rank_across_corners(
            small_baseline, bunch_size=2000, repeater_units=128
        )
        assert resumed == uninterrupted


class TestOptimize:
    def space(self, problem):
        # Two candidates: small enough to always take the exhaustive
        # (checkpointable) search path.
        return DesignSpace(
            node=problem.die.node,
            local_pairs=(1,),
            semi_global_pairs=(1, 2),
            global_pairs=(1,),
            permittivities=(3.9,),
        )

    def test_exhaustive_keep_going_skips_failed_candidate(
        self, small_baseline, monkeypatch
    ):
        failing_compute_rank(search_mod, monkeypatch, fail_calls={0})
        result = optimize_architecture(
            small_baseline,
            self.space(small_baseline),
            keep_going=True,
            bunch_size=2000,
            repeater_units=128,
        )
        assert len(result.failures) == 1
        assert len(result.evaluated) == 1
        assert result.best is not None

    def test_exhaustive_all_failures_raises(self, small_baseline, monkeypatch):
        monkeypatch.setattr(
            search_mod,
            "compute_rank",
            lambda problem, **kwargs: (_ for _ in ()).throw(
                RankComputationError("down")
            ),
        )
        with pytest.raises(RunnerError, match="every candidate"):
            optimize_architecture(
                small_baseline,
                self.space(small_baseline),
                keep_going=True,
                bunch_size=2000,
                repeater_units=128,
            )

    def test_exhaustive_resume(self, small_baseline, monkeypatch, tmp_path):
        path = tmp_path / "ck.json"
        real = search_mod.compute_rank
        uninterrupted = optimize_architecture(
            small_baseline,
            self.space(small_baseline),
            bunch_size=2000,
            repeater_units=128,
        )
        failing_compute_rank(search_mod, monkeypatch, fail_calls={1})
        partial = optimize_architecture(
            small_baseline,
            self.space(small_baseline),
            keep_going=True,
            checkpoint=path,
            bunch_size=2000,
            repeater_units=128,
        )
        assert len(partial.failures) == 1
        monkeypatch.setattr(search_mod, "compute_rank", real)
        resumed_state = failing_compute_rank(search_mod, monkeypatch)
        resumed = optimize_architecture(
            small_baseline,
            self.space(small_baseline),
            checkpoint=path,
            resume=True,
            bunch_size=2000,
            repeater_units=128,
        )
        assert resumed_state["calls"] == 1  # only the missing candidate
        assert resumed == uninterrupted
