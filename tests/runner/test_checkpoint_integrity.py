"""Checkpoint integrity digests, generation rotation, and fail-closed loads."""

import json

import pytest

from repro import obs
from repro.errors import CheckpointError, CheckpointIntegrityError
from repro.runner.checkpoint import (
    INTEGRITY_ALGO,
    Checkpoint,
    load_checkpoint,
    previous_generation_path,
    save_checkpoint,
)


def _save(path, points, run="demo"):
    save_checkpoint(Checkpoint(run=run, points=dict(points)), path)


def _flip_middle_byte(path):
    blob = bytearray(path.read_bytes())
    offset = len(blob) // 2
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestIntegrityStanza:
    def test_saved_file_embeds_digest(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        payload = json.loads(path.read_text())
        assert payload["integrity"]["algo"] == INTEGRITY_ALGO
        assert len(payload["integrity"]["digest"]) == 64

    def test_clean_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1, "b": [2, 3]})
        loaded = load_checkpoint(path)
        assert loaded.points == {"a": 1, "b": [2, 3]}
        assert loaded.generation == "current"
        assert loaded.fallback_error == ""

    def test_flipped_byte_detected(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        _flip_middle_byte(path)
        # a flip either breaks the JSON or trips the digest; both are
        # CheckpointError subclasses and both name the file
        with pytest.raises(CheckpointError, match="ck.json"):
            load_checkpoint(path)

    def test_tampered_value_with_stale_digest_detected(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        payload = json.loads(path.read_text())
        payload["points"]["a"] = 2  # valid JSON, wrong digest
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointIntegrityError, match="digest"):
            load_checkpoint(path)

    def test_malformed_integrity_stanza_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        payload = json.loads(path.read_text())
        payload["integrity"] = "not a dict"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointIntegrityError, match="integrity"):
            load_checkpoint(path)

    def test_legacy_file_without_integrity_loads(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        payload = json.loads(path.read_text())
        del payload["integrity"]
        path.write_text(json.dumps(payload))
        assert load_checkpoint(path).points == {"a": 1}

    def test_truncated_file_names_offset(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="byte offset"):
            load_checkpoint(path)


class TestGenerationRotation:
    def test_first_save_leaves_single_file(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        assert not previous_generation_path(path).exists()

    def test_second_save_rotates_previous_generation(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        _save(path, {"a": 1, "b": 2})
        prev = previous_generation_path(path)
        assert prev.exists()
        assert load_checkpoint(path).points == {"a": 1, "b": 2}
        assert json.loads(prev.read_text())["points"] == {"a": 1}

    def test_corrupt_current_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        _save(path, {"a": 1, "b": 2})
        _flip_middle_byte(path)
        loaded = load_checkpoint(path)
        assert loaded.points == {"a": 1}
        assert loaded.generation == "previous"
        assert "ck.json" in loaded.fallback_error

    def test_fallback_is_counted(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        _save(path, {"a": 1, "b": 2})
        _flip_middle_byte(path)
        obs.reset()
        obs.enable()
        try:
            load_checkpoint(path)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters["checkpoint.integrity_failures"] == 1

    def test_missing_current_with_previous_falls_back(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        _save(path, {"a": 1, "b": 2})
        path.unlink()
        loaded = load_checkpoint(path)
        assert loaded.points == {"a": 1}
        assert loaded.generation == "previous"

    def test_both_generations_bad_names_both_files(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1})
        _save(path, {"a": 1, "b": 2})
        _flip_middle_byte(path)
        prev = previous_generation_path(path)
        prev.write_text("{ torn")
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            load_checkpoint(path)
        with pytest.raises(CheckpointError, match="ck.json.prev"):
            load_checkpoint(path)

    def test_missing_everything_fails_closed(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "ck.json")

    def test_fallback_still_validates_run_name(self, tmp_path):
        path = tmp_path / "ck.json"
        _save(path, {"a": 1}, run="other")
        _save(path, {"a": 1, "b": 2}, run="other")
        _flip_middle_byte(path)
        with pytest.raises(CheckpointError, match="belongs to run"):
            load_checkpoint(path, expect_run="demo")
