"""Tests for cooperative deadline cancellation inside the solvers."""

import time

import pytest

from repro.core.dp import check_deadline
from repro.core.rank import compute_rank
from repro.errors import DeadlineExceeded, ReproError
from repro.runner import PointSpec, RetryPolicy, run_batch


class TestCheckDeadline:
    def test_none_never_raises(self):
        check_deadline(None)

    def test_future_deadline_passes(self):
        check_deadline(time.monotonic() + 60.0)

    def test_expired_deadline_raises_with_location(self):
        with pytest.raises(DeadlineExceeded, match="dp pair"):
            check_deadline(time.monotonic() - 1.0, where="dp pair 0, group 3")


class TestComputeRankDeadline:
    def test_expired_deadline_aborts_solve(self, tiny_problem):
        with pytest.raises(DeadlineExceeded):
            compute_rank(tiny_problem, deadline=time.monotonic() - 1.0)

    def test_generous_deadline_is_harmless(self, tiny_problem):
        unlimited = compute_rank(tiny_problem)
        bounded = compute_rank(tiny_problem, deadline=time.monotonic() + 300.0)
        assert bounded == unlimited

    def test_deadline_exceeded_is_retryable(self):
        assert issubclass(DeadlineExceeded, ReproError)
        assert RetryPolicy().is_retryable(DeadlineExceeded("slow"))


class TestTimeoutThroughRunner:
    def test_timed_out_point_is_journaled_as_failure(self, tiny_problem):
        def evaluate(point, attempt):
            # Simulate honouring attempt.deadline the way compute_rank
            # does: the deadline for a tiny timeout is already in the
            # past by the time the solver polls it.
            check_deadline(time.monotonic() - 1.0, where="test solver")

        outcome = run_batch(
            "timeout-demo",
            [PointSpec(key="p", value=1)],
            evaluate,
            policy=RetryPolicy(max_attempts=2, timeout_s=0.001),
            keep_going=True,
        )
        (failure,) = outcome.failures
        assert failure.error_type == "DeadlineExceeded"
        assert len(failure.attempts) == 2  # timeout consumed the retry too
