"""Fault-injection tests for the batch executor.

The evaluate callables here raise on chosen points / attempts so every
guarantee — isolation, retry accounting, journal contents, strict
abort, checkpoint/resume identity — is asserted directly.
"""

import pytest

from repro.errors import RankComputationError, RunnerError
from repro.runner import (
    BatchOutcome,
    PointSpec,
    RetryPolicy,
    run_batch,
)
from repro.runner.checkpoint import load_checkpoint
from repro.runner.executor import execute_point
from repro.runner.journal import STATUS_CACHED, STATUS_COMPLETED, STATUS_FAILED


def specs(n=5):
    return [
        PointSpec(key=f"p[{i}]", value=float(i), label=f"point {i}")
        for i in range(n)
    ]


def make_evaluate(fail_keys=(), fail_first_attempts=0, log=None):
    """Evaluate callable that fails on chosen points.

    ``fail_keys``: points that fail on *every* attempt.
    ``fail_first_attempts``: every point fails its first N attempts,
    then succeeds (exercises retry success paths).
    """
    attempts_seen = {}

    def evaluate(point, attempt):
        if log is not None:
            log.append((point.key, attempt.index))
        attempts_seen[point.key] = attempts_seen.get(point.key, 0) + 1
        if point.key in fail_keys:
            raise RankComputationError(f"injected failure at {point.key}")
        if attempt.index < fail_first_attempts:
            raise RankComputationError(f"transient failure at {point.key}")
        return {"value": point.value * 10}

    evaluate.attempts_seen = attempts_seen
    return evaluate


class TestIsolation:
    def test_keep_going_completes_all_other_points(self):
        outcome = run_batch(
            "demo",
            specs(5),
            make_evaluate(fail_keys={"p[2]"}),
            keep_going=True,
        )
        assert isinstance(outcome, BatchOutcome)
        assert outcome.partial
        assert set(outcome.results) == {"p[0]", "p[1]", "p[3]", "p[4]"}
        (failure,) = outcome.failures
        assert failure.key == "p[2]"
        assert failure.error_type == "RankComputationError"
        assert "injected failure" in failure.error_message

    def test_strict_mode_aborts_on_first_failure(self):
        log = []
        with pytest.raises(RunnerError, match="p\\[2\\]"):
            run_batch(
                "demo",
                specs(5),
                make_evaluate(fail_keys={"p[2]"}, log=log),
                keep_going=False,
            )
        # Points after the failure were never attempted.
        assert [key for key, _ in log] == ["p[0]", "p[1]", "p[2]"]

    def test_non_retryable_exception_propagates(self):
        def explode(point, attempt):
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            run_batch("demo", specs(2), explode, keep_going=True)

    def test_total_failure(self):
        outcome = run_batch(
            "demo",
            specs(2),
            make_evaluate(fail_keys={"p[0]", "p[1]"}),
            keep_going=True,
        )
        assert outcome.total_failure
        assert not outcome.results

    def test_duplicate_keys_rejected(self):
        points = [PointSpec(key="same", value=1), PointSpec(key="same", value=2)]
        with pytest.raises(RunnerError, match="same"):
            run_batch("demo", points, make_evaluate())


class TestRetries:
    def test_retry_until_success_records_all_attempts(self):
        evaluate = make_evaluate(fail_first_attempts=2)
        outcome = run_batch(
            "demo",
            specs(2),
            evaluate,
            policy=RetryPolicy(max_attempts=3),
            keep_going=True,
        )
        assert outcome.ok
        assert evaluate.attempts_seen == {"p[0]": 3, "p[1]": 3}
        # 2 failed + 1 successful attempt per point -> 2 retries each.
        assert outcome.journal.retries == 4
        for record in outcome.journal.records:
            assert record.status == STATUS_COMPLETED
            assert len(record.attempts) == 3
            assert not record.attempts[0].ok
            assert record.attempts[2].ok

    def test_exhausted_attempts_counted_exactly(self):
        evaluate = make_evaluate(fail_keys={"p[0]"})
        outcome = run_batch(
            "demo",
            specs(1),
            evaluate,
            policy=RetryPolicy(max_attempts=3),
            keep_going=True,
        )
        assert evaluate.attempts_seen == {"p[0]": 3}
        (failure,) = outcome.failures
        assert len(failure.attempts) == 3

    def test_degradation_ladder_reaches_evaluate(self):
        seen = []

        def evaluate(point, attempt):
            seen.append(dict(attempt.degradation))
            if attempt.index < 2:
                raise RankComputationError("transient")
            return 1

        run_batch(
            "demo",
            specs(1),
            evaluate,
            policy=RetryPolicy(max_attempts=3, bunch_scale=2.0),
        )
        assert seen == [{}, {"bunch_scale": 2.0}, {"bunch_scale": 4.0}]

    def test_execute_point_never_raises_on_exhaustion(self):
        outcome = execute_point(
            PointSpec(key="p", value=1),
            make_evaluate(fail_keys={"p"}),
            RetryPolicy(max_attempts=2),
        )
        assert not outcome.ok
        assert outcome.record.status == STATUS_FAILED


class TestCheckpointResume:
    def test_checkpoint_written_after_every_point(self, tmp_path):
        path = tmp_path / "ck.json"
        seen = []

        def evaluate(point, attempt):
            if path.exists():
                seen.append(len(load_checkpoint(path).points))
            return point.value

        run_batch("demo", specs(3), evaluate, checkpoint_path=path)
        # Before point i runs, i points are already checkpointed.
        assert seen == [0, 1, 2]
        assert len(load_checkpoint(path).points) == 3

    def test_strict_failure_still_checkpoints_completed_points(self, tmp_path):
        path = tmp_path / "ck.json"
        with pytest.raises(RunnerError, match="resume"):
            run_batch(
                "demo",
                specs(4),
                make_evaluate(fail_keys={"p[2]"}),
                checkpoint_path=path,
            )
        assert set(load_checkpoint(path).points) == {"p[0]", "p[1]"}

    def test_resume_recomputes_only_missing_points(self, tmp_path):
        path = tmp_path / "ck.json"
        with pytest.raises(RunnerError):
            run_batch(
                "demo",
                specs(4),
                make_evaluate(fail_keys={"p[2]"}),
                checkpoint_path=path,
            )
        evaluate = make_evaluate()  # failure "fixed"
        outcome = run_batch(
            "demo",
            specs(4),
            evaluate,
            checkpoint_path=path,
            resume=True,
        )
        assert outcome.ok
        # Only the failed point and the never-reached one were recomputed.
        assert set(evaluate.attempts_seen) == {"p[2]", "p[3]"}
        cached = {r.key for r in outcome.journal.records
                  if r.status == STATUS_CACHED}
        assert cached == {"p[0]", "p[1]"}

    def test_resumed_results_equal_uninterrupted_run(self, tmp_path):
        path = tmp_path / "ck.json"
        uninterrupted = run_batch("demo", specs(4), make_evaluate())
        with pytest.raises(RunnerError):
            run_batch(
                "demo",
                specs(4),
                make_evaluate(fail_keys={"p[1]"}),
                checkpoint_path=path,
            )
        resumed = run_batch(
            "demo",
            specs(4),
            make_evaluate(),
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.results == uninterrupted.results

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(RunnerError):
            run_batch("demo", specs(1), make_evaluate(), resume=True)

    def test_initial_checkpoint_written_before_first_point(self, tmp_path):
        path = tmp_path / "ck.json"

        def die_immediately(point, attempt):
            raise RankComputationError("boom")

        with pytest.raises(RunnerError):
            run_batch("demo", specs(2), die_immediately, checkpoint_path=path)
        # A kill before the first completed point still leaves a
        # resumable (empty) checkpoint.
        assert load_checkpoint(path, expect_run="demo").points == {}

    def test_serialize_deserialize_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        run_batch(
            "demo",
            specs(2),
            make_evaluate(),
            checkpoint_path=path,
            serialize=lambda result: {"wrapped": result},
        )
        outcome = run_batch(
            "demo",
            specs(2),
            make_evaluate(),
            checkpoint_path=path,
            resume=True,
            serialize=lambda result: {"wrapped": result},
            deserialize=lambda payload: payload["wrapped"],
        )
        assert outcome.results["p[0]"] == {"value": 0.0}
