"""Parallel backend tests: identity with sequential, fault parity.

The contract under test is absolute: ``jobs=N`` must produce the same
results, journal statuses, attempt counts and final checkpoint as
``jobs=1`` — modulo wall-clock fields — including when points fail.
Evaluators here are module-level classes because the parallel path
pickles them to worker processes.
"""

from dataclasses import dataclass, field
from typing import FrozenSet

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankComputationError, RunnerError
from repro.runner import (
    POOL_MODES,
    PointSpec,
    RetryPolicy,
    resolve_chunk_size,
    resolve_jobs,
    run_batch,
    should_use_pool,
    usable_cpus,
)
from repro.runner.checkpoint import load_checkpoint
from repro.runner.journal import STATUS_CACHED, STATUS_COMPLETED, STATUS_FAILED


def specs(n=6):
    return [
        PointSpec(key=f"p[{i}]", value=float(i), label=f"point {i}")
        for i in range(n)
    ]


@dataclass(frozen=True)
class PicklableEvaluate:
    """Deterministic evaluator with injectable failures.

    ``fail_keys`` fail every attempt; ``flaky_keys`` fail attempt 0
    only (succeed under a retry policy with ``max_attempts >= 2``).
    """

    fail_keys: FrozenSet[str] = frozenset()
    flaky_keys: FrozenSet[str] = frozenset()

    def __call__(self, point, attempt):
        if point.key in self.fail_keys:
            raise RankComputationError(f"injected failure at {point.key}")
        if point.key in self.flaky_keys and attempt.index == 0:
            raise RankComputationError(f"transient failure at {point.key}")
        return {"value": point.value * 10, "attempt": attempt.index}


def _attempts_fingerprint(attempts):
    return tuple(
        (a.index, a.error_type, a.error_message, dict(a.degradation))
        for a in attempts
    )


def outcome_fingerprint(outcome):
    """Everything the contract promises, minus wall-clock noise."""
    return {
        "results": dict(outcome.results),
        "failures": [
            (f.key, f.error_type, _attempts_fingerprint(f.attempts))
            for f in outcome.failures
        ],
        "journal": [
            (r.key, r.status, _attempts_fingerprint(r.attempts))
            for r in outcome.journal.records
        ],
    }


def _strip_timing(obj):
    if isinstance(obj, dict):
        return {
            k: _strip_timing(v)
            for k, v in obj.items()
            if k not in ("wall_time_s", "runtime_seconds")
        }
    if isinstance(obj, list):
        return [_strip_timing(item) for item in obj]
    return obj


def checkpoint_fingerprint(path):
    checkpoint = load_checkpoint(path)
    return (
        {key: _strip_timing(rec) for key, rec in checkpoint.points.items()},
        list(checkpoint.points),
    )


class TestResolveJobs:
    def test_none_and_one_are_sequential(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(RunnerError, match="jobs"):
            resolve_jobs(-2)


class TestIdentity:
    def test_results_and_journal_match_sequential(self):
        runs = [
            run_batch("demo", specs(), PicklableEvaluate(), jobs=jobs)
            for jobs in (1, 3)
        ]
        assert outcome_fingerprint(runs[0]) == outcome_fingerprint(runs[1])

    def test_checkpoints_byte_identical(self, tmp_path):
        fingerprints = []
        for jobs in (1, 3):
            path = tmp_path / f"jobs{jobs}.json"
            run_batch(
                "demo",
                specs(),
                PicklableEvaluate(),
                checkpoint_path=path,
                jobs=jobs,
            )
            fingerprints.append(checkpoint_fingerprint(path))
        assert fingerprints[0] == fingerprints[1]
        # Keys are committed in batch order, not completion order.
        assert fingerprints[0][1] == [s.key for s in specs()]

    def test_failures_with_keep_going_match_sequential(self):
        evaluate = PicklableEvaluate(
            fail_keys=frozenset({"p[1]", "p[4]"}),
            flaky_keys=frozenset({"p[2]"}),
        )
        policy = RetryPolicy(max_attempts=2)
        runs = [
            run_batch(
                "demo",
                specs(),
                evaluate,
                policy=policy,
                keep_going=True,
                jobs=jobs,
            )
            for jobs in (1, 4)
        ]
        assert outcome_fingerprint(runs[0]) == outcome_fingerprint(runs[1])
        statuses = {
            r.key: r.status for r in runs[1].journal.records
        }
        assert statuses["p[1]"] == STATUS_FAILED
        assert statuses["p[2]"] == STATUS_COMPLETED
        # Flaky point retried in-worker: both attempts recorded.
        by_key = {r.key: r for r in runs[1].journal.records}
        assert len(by_key["p[2]"].attempts) == 2

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=7),
        fail_mask=st.integers(min_value=0, max_value=127),
        jobs=st.sampled_from([2, 3, 4]),
    )
    def test_property_parallel_equals_sequential(self, n, fail_mask, jobs):
        """For any failure pattern, jobs=N is indistinguishable from jobs=1."""
        fail_keys = frozenset(
            f"p[{i}]" for i in range(n) if fail_mask & (1 << i)
        )
        evaluate = PicklableEvaluate(fail_keys=fail_keys)
        runs = [
            run_batch(
                "demo", specs(n), evaluate, keep_going=True, jobs=run_jobs
            )
            for run_jobs in (1, jobs)
        ]
        assert outcome_fingerprint(runs[0]) == outcome_fingerprint(runs[1])


class TestPoolKnobs:
    def test_pool_modes_exported(self):
        assert set(POOL_MODES) == {"auto", "warm", "sequential"}

    def test_sequential_mode_never_pools(self):
        assert not should_use_pool("sequential", jobs=8, n_points=100)

    def test_pool_needs_work_to_share(self):
        assert not should_use_pool("warm", jobs=1, n_points=100)
        assert not should_use_pool("warm", jobs=4, n_points=1)
        assert should_use_pool("warm", jobs=2, n_points=2)

    def test_auto_requires_multiple_cpus(self):
        expected = usable_cpus() >= 2
        assert should_use_pool("auto", jobs=4, n_points=100) is expected

    def test_invalid_pool_mode_rejected(self):
        with pytest.raises(RunnerError, match="pool_mode"):
            run_batch(
                "demo",
                specs(2),
                PicklableEvaluate(),
                jobs=2,
                pool_mode="tepid",
            )

    def test_negative_chunk_size_rejected(self):
        with pytest.raises(RunnerError, match="chunk_size"):
            run_batch(
                "demo",
                specs(2),
                PicklableEvaluate(),
                jobs=2,
                chunk_size=-1,
            )

    def test_explicit_chunk_size_honoured(self):
        assert resolve_chunk_size(5, n_points=100, workers=2) == 5

    def test_auto_chunk_size_scales_with_batch(self):
        # ~4 waves per worker, never 0, capped for cheap resubmission.
        assert resolve_chunk_size(None, n_points=2, workers=4) == 1
        assert resolve_chunk_size(None, n_points=80, workers=2) == 10
        assert resolve_chunk_size(None, n_points=100_000, workers=2) == 32

    def test_auto_fallback_runs_sequential_with_identical_results(self):
        # pool_mode="sequential" with jobs>1 exercises the fallback
        # dispatch deterministically on any machine: the evaluate is
        # still pickled (portability contract) but no pool is spawned.
        runs = [
            run_batch(
                "demo",
                specs(),
                PicklableEvaluate(),
                jobs=jobs,
                pool_mode=mode,
            )
            for jobs, mode in ((1, "auto"), (4, "sequential"))
        ]
        assert outcome_fingerprint(runs[0]) == outcome_fingerprint(runs[1])

    def test_fallback_still_fails_fast_on_unpicklable_evaluate(self):
        with pytest.raises(RunnerError, match="pickle"):
            run_batch(
                "demo",
                specs(),
                lambda point, attempt: None,
                jobs=2,
                pool_mode="sequential",
            )


class TestWarmPoolIdentity:
    """The warm shared-memory pool against the sequential oracle.

    ``pool_mode="warm"`` forces the real pool even on a single-CPU
    runner, so these tests exercise shm publish/attach, chunked
    dispatch and result streaming rather than the auto fallback.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=9),
        fail_mask=st.integers(min_value=0, max_value=511),
        jobs=st.sampled_from([2, 4]),
        chunk_size=st.sampled_from([1, 3, None]),
    )
    def test_property_warm_pool_equals_sequential(
        self, n, fail_mask, jobs, chunk_size
    ):
        """For any failure pattern × jobs × chunking, the warm pool is
        indistinguishable from jobs=1."""
        fail_keys = frozenset(
            f"p[{i}]" for i in range(n) if fail_mask & (1 << i)
        )
        evaluate = PicklableEvaluate(fail_keys=fail_keys)
        seq = run_batch("demo", specs(n), evaluate, keep_going=True, jobs=1)
        warm = run_batch(
            "demo",
            specs(n),
            evaluate,
            keep_going=True,
            jobs=jobs,
            pool_mode="warm",
            chunk_size=chunk_size,
        )
        assert outcome_fingerprint(seq) == outcome_fingerprint(warm)

    @pytest.mark.parametrize("chunk_size", [1, 3, None])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_checkpoints_byte_identical_to_sequential(
        self, tmp_path, jobs, chunk_size
    ):
        seq_path = tmp_path / "seq.json"
        run_batch(
            "demo", specs(), PicklableEvaluate(), checkpoint_path=seq_path
        )
        warm_path = tmp_path / f"warm-{jobs}-{chunk_size}.json"
        run_batch(
            "demo",
            specs(),
            PicklableEvaluate(),
            checkpoint_path=warm_path,
            jobs=jobs,
            pool_mode="warm",
            chunk_size=chunk_size,
        )
        assert checkpoint_fingerprint(seq_path) == checkpoint_fingerprint(
            warm_path
        )
        # Committed in batch order regardless of chunk completion order.
        assert checkpoint_fingerprint(warm_path)[1] == [
            s.key for s in specs()
        ]

    def test_retries_flaky_points_inside_warm_pool(self):
        evaluate = PicklableEvaluate(flaky_keys=frozenset({"p[1]", "p[3]"}))
        outcome = run_batch(
            "demo",
            specs(),
            evaluate,
            policy=RetryPolicy(max_attempts=2),
            jobs=2,
            pool_mode="warm",
            chunk_size=3,
        )
        by_key = {r.key: r for r in outcome.journal.records}
        assert len(by_key["p[1]"].attempts) == 2
        assert by_key["p[1]"].status == STATUS_COMPLETED
        assert outcome.results["p[1]"] == {"value": 10.0, "attempt": 1}

    def test_warm_pool_resume_computes_only_missing_points(self, tmp_path):
        path = tmp_path / "resume.json"
        run_batch(
            "demo",
            specs(),
            PicklableEvaluate(fail_keys=frozenset({"p[4]"})),
            keep_going=True,
            checkpoint_path=path,
            jobs=2,
            pool_mode="warm",
        )
        outcome = run_batch(
            "demo",
            specs(),
            PicklableEvaluate(),
            checkpoint_path=path,
            resume=True,
            jobs=2,
            pool_mode="warm",
        )
        statuses = {r.key: r.status for r in outcome.journal.records}
        assert statuses["p[4]"] == STATUS_COMPLETED
        cached = [k for k, s in statuses.items() if s == STATUS_CACHED]
        assert len(cached) == len(specs()) - 1


class TestStrictParallel:
    def test_first_failure_in_batch_order_reported(self):
        evaluate = PicklableEvaluate(fail_keys=frozenset({"p[1]", "p[3]"}))
        with pytest.raises(RunnerError, match=r"point 'point 1' failed"):
            run_batch("demo", specs(), evaluate, jobs=3)

    def test_strict_checkpoint_keeps_completed_points(self, tmp_path):
        path = tmp_path / "strict.json"
        evaluate = PicklableEvaluate(fail_keys=frozenset({"p[2]"}))
        with pytest.raises(RunnerError):
            run_batch(
                "demo", specs(), evaluate, checkpoint_path=path, jobs=2
            )
        checkpoint = load_checkpoint(path)
        assert "p[2]" not in checkpoint.points
        assert set(checkpoint.points) <= {s.key for s in specs()}


class TestPicklability:
    def test_unpicklable_evaluate_fails_before_forking(self):
        with pytest.raises(RunnerError, match="pickle"):
            run_batch(
                "demo", specs(), lambda point, attempt: None, jobs=2
            )

    def test_unpicklable_evaluate_fine_sequentially(self):
        outcome = run_batch(
            "demo", specs(2), lambda point, attempt: point.value, jobs=1
        )
        assert outcome.results == {"p[0]": 0.0, "p[1]": 1.0}


class TestParallelResume:
    def test_resume_computes_only_missing_points(self, tmp_path):
        path = tmp_path / "resume.json"
        evaluate = PicklableEvaluate(fail_keys=frozenset({"p[4]"}))
        run_batch(
            "demo",
            specs(),
            evaluate,
            keep_going=True,
            checkpoint_path=path,
            jobs=3,
        )
        outcome = run_batch(
            "demo",
            specs(),
            PicklableEvaluate(),
            checkpoint_path=path,
            resume=True,
            jobs=3,
        )
        statuses = {r.key: r.status for r in outcome.journal.records}
        assert statuses["p[4]"] == STATUS_COMPLETED
        cached = [k for k, s in statuses.items() if s == STATUS_CACHED]
        assert len(cached) == len(specs()) - 1
        assert outcome.results["p[4]"] == {"value": 40.0, "attempt": 0}


class TestAmortizedCheckpoints:
    def _count_commits(self, monkeypatch):
        import repro.runner.executor as executor

        calls = []
        real = executor.save_checkpoint

        def counting(checkpoint, path):
            calls.append(len(checkpoint.points))
            return real(checkpoint, path)

        monkeypatch.setattr(executor, "save_checkpoint", counting)
        return calls

    def test_checkpoint_every_batches_writes(self, tmp_path, monkeypatch):
        calls = self._count_commits(monkeypatch)
        run_batch(
            "demo",
            specs(6),
            PicklableEvaluate(),
            checkpoint_path=tmp_path / "c.json",
            checkpoint_every=3,
        )
        # identity write + one per 3 points + final commit
        assert calls == [0, 3, 6, 6]

    def test_final_commit_always_complete(self, tmp_path, monkeypatch):
        calls = self._count_commits(monkeypatch)
        path = tmp_path / "c.json"
        run_batch(
            "demo",
            specs(5),
            PicklableEvaluate(),
            checkpoint_path=path,
            checkpoint_every=1000,
        )
        assert calls == [0, 5]
        assert set(load_checkpoint(path).points) == {s.key for s in specs(5)}

    def test_final_commit_on_strict_failure(self, tmp_path, monkeypatch):
        calls = self._count_commits(monkeypatch)
        path = tmp_path / "c.json"
        with pytest.raises(RunnerError):
            run_batch(
                "demo",
                specs(5),
                PicklableEvaluate(fail_keys=frozenset({"p[3]"})),
                checkpoint_path=path,
                checkpoint_every=1000,
            )
        # Every completed point survives even though no periodic write fired.
        assert set(load_checkpoint(path).points) == {"p[0]", "p[1]", "p[2]"}

    def test_invalid_knobs_rejected(self, tmp_path):
        with pytest.raises(RunnerError, match="checkpoint_every"):
            run_batch(
                "demo", specs(2), PicklableEvaluate(), checkpoint_every=0
            )
        with pytest.raises(RunnerError, match="checkpoint_interval_s"):
            run_batch(
                "demo",
                specs(2),
                PicklableEvaluate(),
                checkpoint_interval_s=0.0,
            )
