"""Chaos suite: the runner's recovery contract under injected faults.

The contract, for ANY deterministic fault schedule: ``run_batch``
either completes with the same results as a fault-free sequential run,
or raises a documented :class:`~repro.errors.ReproError` leaving a
loadable checkpoint from which ``resume=True`` completes with the same
results.  Fixed seeds (not Hypothesis) drive the schedule generator so
CI replays byte-identical chaos runs.

Process-level behaviours — SIGTERM leaves no orphans, a kill
mid-checkpoint-commit preserves the previous generation — run the
runner in a real subprocess.
"""

import json
import os
import random
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.errors import ReproError, RunnerError
from repro.faultkit import ENV_VAR, KINDS, FaultSchedule, FaultSpec
from repro.runner import PointSpec, RetryPolicy, run_batch
from repro.runner.checkpoint import load_checkpoint
from repro.runner.journal import STATUS_FAILED

from dataclasses import dataclass

from .test_parallel import specs

SRC = str(Path(__file__).resolve().parents[2] / "src")


@dataclass(frozen=True)
class ChaosEvaluate:
    """Deterministic picklable evaluator whose result is independent of
    the attempt index — retries and resubmissions converge to the same
    value, so identity with the fault-free run is exact."""

    def __call__(self, point, attempt):
        return {"value": point.value * 10}

#: Fixed chaos seeds; CI replays exactly these schedules.
SEEDS = (1, 2, 3, 4, 5, 6)

#: Sequential runs never reach the worker-only sites, so kill/hang/
#: pickle specs would be inert there; draw from the kinds that can fire.
SEQ_KINDS = ("raise", "torn", "corrupt")


def _policy():
    return RetryPolicy(max_attempts=2, timeout_s=0.5, hang_grace=2.0)


def _baseline_results(n=6):
    outcome = run_batch(
        "chaos", specs(n), ChaosEvaluate(), policy=_policy(), jobs=1
    )
    return dict(outcome.results)


@pytest.fixture
def metrics():
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


class TestChaosProperty:
    """Fixed-seed sweep of generated schedules across jobs=1 and jobs=4."""

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_completes_or_leaves_resumable_checkpoint(self, tmp_path, seed, jobs):
        kinds = SEQ_KINDS if jobs == 1 else KINDS
        schedule = FaultSchedule.seeded(
            random.Random(seed),
            [s.key for s in specs()],
            kinds=kinds,
            hang_s=5.0,
            seed=seed,
        )
        baseline = _baseline_results()
        path = tmp_path / "chaos_ck.json"
        try:
            outcome = run_batch(
                "chaos",
                specs(),
                ChaosEvaluate(),
                policy=_policy(),
                jobs=jobs,
                pool_mode="warm",
                checkpoint_path=path,
                fault_schedule=schedule,
            )
        except ReproError:
            # Documented failure exit: the checkpoint (some generation)
            # must be loadable and a fault-free resume must converge to
            # the baseline.
            assert load_checkpoint(path, expect_run="chaos") is not None
            resumed = run_batch(
                "chaos",
                specs(),
                ChaosEvaluate(),
                policy=_policy(),
                jobs=jobs,
                pool_mode="warm",
                checkpoint_path=path,
                resume=True,
            )
            assert not resumed.failures
            assert dict(resumed.results) == baseline
        else:
            assert not outcome.failures
            assert dict(outcome.results) == baseline
            # Even when the final write was torn/corrupted, a
            # generation must remain loadable.
            assert load_checkpoint(path, expect_run="chaos") is not None


class TestInjectedRaise:
    def test_retry_absorbs_single_injected_raise(self, metrics):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="executor.attempt.start",
                    kind="raise",
                    point="p[2]",
                    attempt=0,
                ),
            )
        )
        outcome = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=_policy(),
            fault_schedule=schedule,
        )
        assert dict(outcome.results) == _baseline_results()
        by_key = {r.key: r for r in outcome.journal.records}
        assert len(by_key["p[2]"].attempts) == 2
        assert by_key["p[2]"].attempts[0].error_type == "InjectedFault"
        assert obs.snapshot()["counters"]["fault.injected.raise"] == 1

    def test_exhausted_attempts_fail_strict_with_checkpoint(self, tmp_path):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="executor.attempt.start",
                    kind="raise",
                    point="p[3]",
                    times=2,
                ),
            )
        )
        path = tmp_path / "ck.json"
        with pytest.raises(RunnerError, match=r"p\[3\]"):
            run_batch(
                "chaos",
                specs(),
                ChaosEvaluate(),
                policy=_policy(),
                checkpoint_path=path,
                fault_schedule=schedule,
            )
        assert set(load_checkpoint(path).points) == {"p[0]", "p[1]", "p[2]"}


class TestWorkerDeath:
    def test_killed_worker_resubmits_and_completes(self, metrics):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="parallel.worker.start",
                    kind="kill",
                    point="p[1]",
                    submit=0,
                ),
            )
        )
        outcome = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=_policy(),
            jobs=2,
            pool_mode="warm",
            fault_schedule=schedule,
        )
        assert dict(outcome.results) == _baseline_results()
        counters = obs.snapshot()["counters"]
        assert counters["runner.worker_deaths"] >= 1
        assert counters["runner.resubmissions"] >= 1

    def test_repeatedly_killed_point_fails_as_worker_crash(self, metrics):
        # No submit matcher: every worker evaluating p[1] dies, until
        # the policy's submission budget is spent.
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="parallel.worker.start", kind="kill", point="p[1]"
                ),
            )
        )
        outcome = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=_policy(),
            jobs=2,
            pool_mode="warm",
            keep_going=True,
            fault_schedule=schedule,
        )
        assert set(outcome.results) == {s.key for s in specs()} - {"p[1]"}
        by_key = {r.key: r for r in outcome.journal.records}
        assert by_key["p[1]"].status == STATUS_FAILED
        assert by_key["p[1]"].attempts[-1].error_type == "WorkerCrash"
        assert obs.snapshot()["counters"]["runner.worker_deaths"] == 2

    def test_degrades_to_sequential_when_pool_keeps_dying(self, metrics):
        # Every worker dies on its first task, whatever the point: the
        # pool exhausts its death budget and the parent finishes the
        # batch in-process.
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="parallel.worker.start", kind="kill", times=1000
                ),
            )
        )
        outcome = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=RetryPolicy(max_attempts=20),
            jobs=2,
            pool_mode="warm",
            fault_schedule=schedule,
        )
        assert dict(outcome.results) == _baseline_results()
        assert not outcome.failures
        counters = obs.snapshot()["counters"]
        assert counters["runner.pool_degradations"] >= 1
        assert counters["runner.worker_deaths"] > 4


class TestHangWatchdog:
    def test_hung_worker_reaped_and_point_resubmitted(self, metrics):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="parallel.worker.start",
                    kind="hang",
                    point="p[0]",
                    submit=0,
                    arg=60.0,
                ),
            )
        )
        policy = RetryPolicy(max_attempts=2, timeout_s=0.2, hang_grace=1.5)
        started = time.monotonic()
        outcome = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=policy,
            jobs=2,
            pool_mode="warm",
            fault_schedule=schedule,
        )
        elapsed = time.monotonic() - started
        assert dict(outcome.results) == _baseline_results()
        # Reaped by the watchdog (budget 0.2*2*1.5 = 0.6s), not by
        # waiting out the 60s sleep.
        assert elapsed < 30.0
        counters = obs.snapshot()["counters"]
        assert counters["runner.hangs_reaped"] >= 1
        assert counters["runner.worker_deaths"] >= 1


class TestPickleFault:
    def test_unpicklable_result_raises_documented_error(self, tmp_path):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="parallel.result",
                    kind="pickle",
                    point="p[2]",
                    submit=0,
                ),
            )
        )
        path = tmp_path / "ck.json"
        with pytest.raises(RunnerError, match="serialize"):
            run_batch(
                "chaos",
                specs(),
                ChaosEvaluate(),
                policy=_policy(),
                jobs=2,
                pool_mode="warm",
                checkpoint_path=path,
                fault_schedule=schedule,
            )
        resumed = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=_policy(),
            jobs=2,
            pool_mode="warm",
            checkpoint_path=path,
            resume=True,
        )
        assert dict(resumed.results) == _baseline_results()


@dataclass(frozen=True, eq=False)
class ShmTableEvaluate:
    """Evaluator whose dense lookup table rides the shared-memory
    handoff — the hoisting pickler extracts ``table`` so the shm fault
    sites actually fire (a payload with no arrays ships inline)."""

    table: np.ndarray

    def __call__(self, point, attempt):
        return {"value": float(self.table[int(point.value)]) + point.value}


def _shm_evaluate():
    # Large enough that a byte flipped at the middle of the segment
    # (the corrupt fault) lands inside the digested array region.
    return ShmTableEvaluate(table=np.arange(4096, dtype=np.float64) * 2.0)


class TestShmAndChunkFaults:
    """Targeted schedules for the warm pool's shm and chunk sites.

    Same contract as the seeded sweep: identical to the fault-free
    sequential run, or a documented error with a resumable checkpoint.
    """

    def _shm_baseline(self):
        outcome = run_batch(
            "chaos", specs(), _shm_evaluate(), policy=_policy(), jobs=1
        )
        return dict(outcome.results)

    def test_corrupt_shm_segment_fails_sha256_validation(self, tmp_path):
        # The byte flips AFTER the parent computed the digest, so every
        # worker must refuse the table rather than compute on silently
        # corrupt data.
        schedule = FaultSchedule(
            specs=(FaultSpec(site="pool.shm.export", kind="corrupt"),)
        )
        path = tmp_path / "ck.json"
        with pytest.raises(RunnerError, match="SHA-256"):
            run_batch(
                "chaos",
                specs(),
                _shm_evaluate(),
                policy=_policy(),
                jobs=2,
                pool_mode="warm",
                checkpoint_path=path,
                fault_schedule=schedule,
            )
        assert load_checkpoint(path, expect_run="chaos") is not None
        resumed = run_batch(
            "chaos",
            specs(),
            _shm_evaluate(),
            policy=_policy(),
            jobs=2,
            pool_mode="warm",
            checkpoint_path=path,
            resume=True,
        )
        assert dict(resumed.results) == self._shm_baseline()

    def test_attach_fault_surfaces_as_documented_error(self, tmp_path):
        # Workers re-arm the schedule from the shipped blob, so a
        # times=1 attach fault poisons every worker's first attach; the
        # replayed error must reach the parent verbatim.
        schedule = FaultSchedule(
            specs=(FaultSpec(site="pool.shm.attach", kind="raise"),)
        )
        path = tmp_path / "ck.json"
        with pytest.raises(ReproError, match="pool.shm.attach"):
            run_batch(
                "chaos",
                specs(),
                _shm_evaluate(),
                policy=_policy(),
                jobs=2,
                pool_mode="warm",
                checkpoint_path=path,
                fault_schedule=schedule,
            )
        assert load_checkpoint(path, expect_run="chaos") is not None
        resumed = run_batch(
            "chaos",
            specs(),
            _shm_evaluate(),
            policy=_policy(),
            jobs=2,
            pool_mode="warm",
            checkpoint_path=path,
            resume=True,
        )
        assert dict(resumed.results) == self._shm_baseline()

    def test_kill_at_chunk_start_resubmits_and_completes(self, metrics):
        # chunk_size=1 pins the chunk's context point to the targeted
        # key; the resubmission arrives at submit=1 and no longer
        # matches the submit=0 spec.
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="pool.chunk.start",
                    kind="kill",
                    point="p[1]",
                    submit=0,
                ),
            )
        )
        outcome = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=_policy(),
            jobs=2,
            pool_mode="warm",
            chunk_size=1,
            fault_schedule=schedule,
        )
        assert dict(outcome.results) == _baseline_results()
        counters = obs.snapshot()["counters"]
        assert counters["runner.worker_deaths"] >= 1
        assert counters["runner.resubmissions"] >= 1

    def test_dispatch_fault_leaves_resumable_checkpoint(self, tmp_path):
        # Parent-side failure while feeding the work queue: the run
        # aborts with the injected error but the finally-path still
        # commits whatever completed.
        schedule = FaultSchedule(
            specs=(FaultSpec(site="pool.chunk.dispatch", kind="raise"),)
        )
        path = tmp_path / "ck.json"
        with pytest.raises(ReproError, match="pool.chunk.dispatch"):
            run_batch(
                "chaos",
                specs(),
                ChaosEvaluate(),
                policy=_policy(),
                jobs=2,
                pool_mode="warm",
                checkpoint_path=path,
                fault_schedule=schedule,
            )
        assert load_checkpoint(path, expect_run="chaos") is not None
        resumed = run_batch(
            "chaos",
            specs(),
            ChaosEvaluate(),
            policy=_policy(),
            checkpoint_path=path,
            resume=True,
        )
        assert dict(resumed.results) == _baseline_results()


def _wait_for(predicate, timeout_s, message):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


def _pid_dead(pid):
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return True
    # Forked children of a dead parent may linger as zombies until
    # reaped by init; a zombie is dead for our purposes.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] == "Z"
    except OSError:
        return True


class TestSigtermReapsWorkers:
    def test_sigterm_exits_143_and_leaves_no_orphans(self, tmp_path):
        pids_file = tmp_path / "worker_pids.txt"
        ck = tmp_path / "ck.json"
        driver = textwrap.dedent(
            f"""
            import os, sys, time
            sys.path.insert(0, {SRC!r})
            from repro.runner import PointSpec, run_batch

            def evaluate(point, attempt):
                with open({str(pids_file)!r}, "a") as fh:
                    fh.write(str(os.getpid()) + chr(10))
                    fh.flush()
                time.sleep(60.0)
                return point.value

            points = [PointSpec(key=f"p{{i}}", value=float(i)) for i in range(4)]
            run_batch("sig", points, evaluate, jobs=2, pool_mode="warm",
                      checkpoint_path={str(ck)!r})
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", driver],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for(
                lambda: pids_file.exists()
                and len(pids_file.read_text().split()) >= 2,
                30.0,
                "workers never started",
            )
            worker_pids = [int(p) for p in pids_file.read_text().split()]
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30.0)
        finally:
            proc.kill()
            proc.wait(timeout=10.0)
        assert proc.returncode == 143  # 128 + SIGTERM
        for pid in worker_pids:
            _wait_for(
                lambda pid=pid: _pid_dead(pid),
                10.0,
                f"worker {pid} survived SIGTERM of the parent",
            )
        # The signal path unwinds through run_batch's finally: the
        # (empty) identity checkpoint was still committed.
        assert load_checkpoint(ck, expect_run="sig") is not None


class TestKillMidCommit:
    def test_torn_write_preserves_previous_generation_and_resumes(self, tmp_path):
        ck = tmp_path / "ck.json"
        schedule = {
            "specs": [
                {"site": "checkpoint.write.mid", "kind": "kill", "occurrence": 2}
            ]
        }
        driver = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {SRC!r})
            from repro.runner import PointSpec, run_batch

            def evaluate(point, attempt):
                return point.value * 10

            points = [PointSpec(key=f"p[{{i}}]", value=float(i)) for i in range(6)]
            run_batch("torn", points, evaluate, checkpoint_path={str(ck)!r})
            """
        )
        env = dict(os.environ)
        env[ENV_VAR] = json.dumps(schedule)
        proc = subprocess.run(
            [sys.executable, "-c", driver],
            env=env,
            capture_output=True,
            timeout=120,
        )
        # SIGKILL mid-commit: after the identity write (occurrence 0)
        # and p[0]'s commit (occurrence 1), the process dies during
        # p[1]'s commit — after the temp file, before the renames.
        assert proc.returncode == -signal.SIGKILL
        loaded = load_checkpoint(ck, expect_run="torn")
        assert set(loaded.points) == {"p[0]"}
        # Resume in-process without faults: identical to a clean run.
        points = [PointSpec(key=f"p[{i}]", value=float(i)) for i in range(6)]
        outcome = run_batch(
            "torn",
            points,
            ChaosEvaluate(),
            checkpoint_path=ck,
            resume=True,
        )
        expected = {f"p[{i}]": {"value": float(i) * 10} for i in range(6)}
        expected["p[0]"] = 0.0  # resumed from the killed run's evaluator
        assert dict(outcome.results) == expected
        final = load_checkpoint(ck, expect_run="torn")
        assert final.generation == "current"
        assert list(final.points) == [f"p[{i}]" for i in range(6)]
