"""Tests for checkpoint files: atomicity, validation, resume identity."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.runner import RunJournal
from repro.runner.checkpoint import (
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.runner.journal import STATUS_COMPLETED, PointRecord


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        journal = RunJournal("demo")
        journal.add(
            PointRecord(key="a", value=1.0, status=STATUS_COMPLETED)
        )
        checkpoint = Checkpoint(
            run="demo", points={"a": {"rank": 3}}, journal=journal
        )
        path = tmp_path / "ck.json"
        save_checkpoint(checkpoint, path)
        back = load_checkpoint(path)
        assert back.run == "demo"
        assert back.points == {"a": {"rank": 3}}
        assert back.journal is not None
        assert back.journal.records == journal.records

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(Checkpoint(run="demo", points={}), path)
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_rewrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(Checkpoint(run="demo", points={"a": 1}), path)
        save_checkpoint(Checkpoint(run="demo", points={"a": 1, "b": 2}), path)
        assert load_checkpoint(path).points == {"a": 1, "b": 2}


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="ck.json"):
            load_checkpoint(tmp_path / "ck.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(
            json.dumps({"format": "repro.sweep", "version": 1, "run": "x"})
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_run_name_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(Checkpoint(run="sweep:R", points={}), path)
        with pytest.raises(CheckpointError, match="sweep:R"):
            load_checkpoint(path, expect_run="sweep:K")

    def test_matching_run_name_accepted(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(Checkpoint(run="sweep:R", points={}), path)
        assert load_checkpoint(path, expect_run="sweep:R").run == "sweep:R"
