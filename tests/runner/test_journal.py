"""Tests for the run journal and its JSON round-trip."""

import json

import pytest

from repro.errors import RunnerError
from repro.runner import RunJournal
from repro.runner.journal import (
    STATUS_CACHED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    AttemptRecord,
    PointFailure,
    PointRecord,
)


def _failed_record(key="R[1]=0.2", value=0.2):
    return PointRecord(
        key=key,
        value=value,
        status=STATUS_FAILED,
        attempts=(
            AttemptRecord(
                index=0,
                error_type="RankComputationError",
                error_message="injected",
                wall_time_s=0.01,
            ),
            AttemptRecord(
                index=1,
                error_type="DeadlineExceeded",
                error_message="too slow",
                wall_time_s=0.02,
                degradation={"bunch_scale": 2.0},
            ),
        ),
    )


def _completed_record(key="R[0]=0.1", value=0.1, retried=False):
    attempts = []
    if retried:
        attempts.append(
            AttemptRecord(
                index=0,
                error_type="RankComputationError",
                error_message="flaky",
                wall_time_s=0.01,
            )
        )
        attempts.append(
            AttemptRecord(
                index=1, wall_time_s=0.02, degradation={"bunch_scale": 2.0}
            )
        )
    else:
        attempts.append(AttemptRecord(index=0, wall_time_s=0.02))
    return PointRecord(
        key=key, value=value, status=STATUS_COMPLETED, attempts=tuple(attempts)
    )


class TestCounters:
    def test_counts_by_status(self):
        journal = RunJournal("demo")
        journal.add(_completed_record())
        journal.add(_failed_record())
        journal.add(
            PointRecord(key="R[2]=0.3", value=0.3, status=STATUS_CACHED)
        )
        assert journal.completed == 1
        assert journal.failed == 1
        assert journal.cached == 1

    def test_retries_count_extra_attempts_only(self):
        journal = RunJournal("demo")
        journal.add(_completed_record(retried=True))  # 2 attempts -> 1 retry
        journal.add(_failed_record())  # 2 attempts -> 1 retry
        journal.add(_completed_record(key="R[3]=0.4", value=0.4))  # no retry
        assert journal.retries == 2

    def test_degradations_lists_coarsened_points(self):
        journal = RunJournal("demo")
        journal.add(_completed_record(retried=True))
        journal.add(_completed_record(key="R[3]=0.4", value=0.4))
        degraded = journal.degradations()
        assert set(degraded) == {"R[0]=0.1"}

    def test_failures_are_structured(self):
        journal = RunJournal("demo")
        journal.add(_failed_record())
        (failure,) = journal.failures()
        assert isinstance(failure, PointFailure)
        assert failure.key == "R[1]=0.2"
        assert failure.value == 0.2
        assert failure.error_type == "DeadlineExceeded"
        assert "too slow" in failure.error_message

    def test_summary_mentions_failures(self):
        journal = RunJournal("demo")
        journal.add(_completed_record())
        journal.add(_failed_record())
        summary = journal.summary()
        assert "demo" in summary
        assert "1 completed" in summary
        assert "FAILED" in summary


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        journal = RunJournal("demo")
        journal.add(_completed_record(retried=True))
        journal.add(_failed_record())
        payload = json.loads(json.dumps(journal.to_dict()))
        back = RunJournal.from_dict(payload)
        assert back.name == journal.name
        assert back.records == journal.records

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(RunnerError):
            RunJournal.from_dict({"records": []})

    def test_attempt_record_round_trip(self):
        attempt = AttemptRecord(
            index=1,
            error_type="X",
            error_message="y",
            wall_time_s=1.5,
            degradation={"bunch_scale": 4.0},
        )
        assert AttemptRecord.from_dict(attempt.to_dict()) == attempt


class TestWallTimeSemantics:
    def test_wall_time_excluded_from_equality(self):
        """Timings differ run to run; journal equality must not.  This
        is what lets a resumed run's journal entries compare equal to
        an uninterrupted run's (same contract as
        ``SolverStats.runtime_seconds``)."""
        fast = AttemptRecord(index=0, wall_time_s=0.01)
        slow = AttemptRecord(index=0, wall_time_s=9.99)
        assert fast == slow
        assert PointRecord(
            key="p", value=1.0, status=STATUS_COMPLETED, attempts=(fast,)
        ) == PointRecord(
            key="p", value=1.0, status=STATUS_COMPLETED, attempts=(slow,)
        )

    def test_wall_time_still_serialized_and_summed(self):
        """Excluded from equality, but present in the JSON payload and
        in the journal's total — the audit data survives."""
        attempt = AttemptRecord(index=0, wall_time_s=1.25)
        assert attempt.to_dict()["wall_time_s"] == 1.25
        journal = RunJournal("demo")
        journal.add(
            PointRecord(
                key="p", value=1.0, status=STATUS_COMPLETED, attempts=(attempt,)
            )
        )
        assert journal.total_wall_time_s == 1.25

    def test_executor_populates_wall_time(self):
        """Every attempt the executor journals carries a positive
        wall time, including failed ones."""
        from repro.runner import RetryPolicy, run_batch

        from .test_executor import make_evaluate, specs

        outcome = run_batch(
            "demo",
            specs(2),
            make_evaluate(fail_first_attempts=1),
            policy=RetryPolicy(max_attempts=2),
        )
        attempts = [
            a for r in outcome.journal.records for a in r.attempts
        ]
        assert len(attempts) == 4  # 2 points x (1 failure + 1 success)
        assert all(a.wall_time_s > 0 for a in attempts)
