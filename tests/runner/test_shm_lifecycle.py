"""Shared-memory lifecycle regression: no orphaned ``/dev/shm`` segments.

The warm pool's handoff segment (``repro-shm-<pid>-<n>``) is owned by
the parent: workers attach and close but never unlink, the parent
unlinks in ``run_batch``'s finally, and the multiprocessing resource
tracker is the backstop when the parent dies abruptly.  These tests pin
the no-orphans contract for a clean exit, for an aborted run, for
SIGTERM of the parent, and for SIGKILL of a worker holding the mapping
mid-chunk.
"""

import signal
import subprocess
import sys
import textwrap
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.core.precompute import SHM_PREFIX
from repro.errors import RankComputationError, RunnerError
from repro.faultkit import FaultSchedule, FaultSpec
from repro.runner import RetryPolicy, run_batch

from .test_chaos import _shm_evaluate, _wait_for
from .test_parallel import specs

SHM_DIR = Path("/dev/shm")
SRC = str(Path(__file__).resolve().parents[2] / "src")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm on this platform"
)


def _segments(prefix=SHM_PREFIX):
    return {p.name for p in SHM_DIR.glob(f"{prefix}-*")}


@dataclass(frozen=True, eq=False)
class FailingShmEvaluate:
    """Array-carrying evaluator that always fails one point, driving
    the strict-abort path while a segment is live."""

    table: np.ndarray

    def __call__(self, point, attempt):
        if point.key == "p[1]":
            raise RankComputationError("injected failure")
        return float(self.table[int(point.value)])


class TestCleanExit:
    def test_no_segments_after_clean_run(self):
        before = _segments()
        outcome = run_batch(
            "shm", specs(), _shm_evaluate(), jobs=2, pool_mode="warm"
        )
        assert len(outcome.results) == len(specs())
        assert _segments() <= before

    def test_no_segments_after_strict_failure(self):
        before = _segments()
        evaluate = FailingShmEvaluate(
            table=np.arange(4096, dtype=np.float64)
        )
        with pytest.raises(RunnerError):
            run_batch("shm", specs(), evaluate, jobs=2, pool_mode="warm")
        assert _segments() <= before


class TestWorkerSigkill:
    def test_no_segments_after_worker_killed_mid_chunk(self):
        # The killed worker dies holding an attached mapping; the
        # parent must still be able to unlink once the batch completes.
        before = _segments()
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    site="pool.chunk.start",
                    kind="kill",
                    point="p[1]",
                    submit=0,
                ),
            )
        )
        outcome = run_batch(
            "shm",
            specs(),
            _shm_evaluate(),
            policy=RetryPolicy(max_attempts=2),
            jobs=2,
            pool_mode="warm",
            chunk_size=1,
            fault_schedule=schedule,
        )
        assert len(outcome.results) == len(specs())
        assert _segments() <= before


class TestParentSigterm:
    def test_sigterm_exit_143_unlinks_segment(self, tmp_path):
        driver = textwrap.dedent(
            f"""
            import sys, time
            sys.path.insert(0, {SRC!r})
            from dataclasses import dataclass

            import numpy as np

            from repro.runner import PointSpec, run_batch

            @dataclass(frozen=True, eq=False)
            class Sleepy:
                table: "np.ndarray"

                def __call__(self, point, attempt):
                    time.sleep(60.0)
                    return float(self.table[0])

            points = [PointSpec(key=f"p{{i}}", value=float(i)) for i in range(4)]
            run_batch(
                "shm",
                points,
                Sleepy(table=np.arange(4096, dtype=np.float64)),
                jobs=2,
                pool_mode="warm",
            )
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", driver],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        mine = f"{SHM_PREFIX}-{proc.pid}"
        try:
            _wait_for(
                lambda: _segments(prefix=mine),
                30.0,
                "driver never published a shared-memory segment",
            )
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30.0)
        finally:
            proc.kill()
            proc.wait(timeout=10.0)
        assert proc.returncode == 143  # 128 + SIGTERM
        # The signal path unwinds through run_batch's finally (and the
        # resource tracker backstops it): the segment must disappear.
        _wait_for(
            lambda: not _segments(prefix=mine),
            10.0,
            f"orphaned shared-memory segment(s): {_segments(prefix=mine)}",
        )
