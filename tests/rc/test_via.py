"""Tests for via blockage accounting."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.rc.via import (
    DEFAULT_VIAS_PER_WIRE,
    via_blocked_area,
    wire_via_count,
)
from repro.tech.node import ViaRule


@pytest.fixture
def via():
    return ViaRule(min_width=units.um(0.26), enclosure=units.um(0.04))


class TestWireViaCount:
    def test_default(self):
        assert wire_via_count() == DEFAULT_VIAS_PER_WIRE == 4

    def test_override(self):
        assert wire_via_count(2) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            wire_via_count(-1)


class TestViaBlockedArea:
    def test_formula(self, via):
        blocked = via_blocked_area(via, wire_count=10, repeater_count=5)
        assert blocked == pytest.approx((5 + 4 * 10) * via.blocked_area)

    def test_zero_traffic(self, via):
        assert via_blocked_area(via, 0, 0) == 0.0

    def test_fractional_counts_allowed(self, via):
        assert via_blocked_area(via, 0.5, 0.0) == pytest.approx(
            2.0 * via.blocked_area
        )

    def test_negative_counts_rejected(self, via):
        with pytest.raises(ConfigurationError):
            via_blocked_area(via, -1, 0)
        with pytest.raises(ConfigurationError):
            via_blocked_area(via, 0, -1)

    def test_linear_in_wires(self, via):
        one = via_blocked_area(via, 1, 0)
        hundred = via_blocked_area(via, 100, 0)
        assert hundred == pytest.approx(100 * one)

    def test_custom_vias_per_wire(self, via):
        assert via_blocked_area(via, 10, 0, vias_per_wire=2) == pytest.approx(
            20 * via.blocked_area
        )
