"""Tests for the WireRC bundle and extraction entry point."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.rc.capacitance import ParallelPlateFringeModel, total_capacitance_per_length
from repro.rc.models import WireRC, extract_wire_rc
from repro.rc.resistance import resistance_per_length
from repro.tech.materials import COPPER, SIO2
from repro.tech.node import MetalRule


@pytest.fixture
def rule():
    return MetalRule(
        min_width=units.um(0.2),
        min_spacing=units.um(0.21),
        thickness=units.um(0.34),
    )


class TestWireRC:
    def test_rc_product(self):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        assert rc.rc_product == pytest.approx(2e-5)

    @pytest.mark.parametrize("r,c", [(0.0, 1e-10), (1e5, 0.0), (-1.0, 1e-10)])
    def test_non_positive_rejected(self, r, c):
        with pytest.raises(ConfigurationError):
            WireRC(resistance=r, capacitance=c)

    def test_scaled(self):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        scaled = rc.scaled(r_factor=2.0, c_factor=0.5)
        assert scaled.resistance == pytest.approx(2e5)
        assert scaled.capacitance == pytest.approx(1e-10)

    def test_scaled_rejects_non_positive(self):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        with pytest.raises(ConfigurationError):
            rc.scaled(r_factor=0.0)


class TestExtraction:
    def test_resistance_matches_component(self, rule):
        rc = extract_wire_rc(rule, COPPER, SIO2, miller_factor=2.0)
        assert rc.resistance == pytest.approx(resistance_per_length(rule, COPPER))

    def test_capacitance_matches_component(self, rule):
        rc = extract_wire_rc(rule, COPPER, SIO2, miller_factor=2.0)
        assert rc.capacitance == pytest.approx(
            total_capacitance_per_length(rule, SIO2, 2.0)
        )

    def test_model_override(self, rule):
        model = ParallelPlateFringeModel(fringe_factor=1.0)
        rc = extract_wire_rc(rule, COPPER, SIO2, 2.0, capacitance_model=model)
        assert rc.capacitance == pytest.approx(
            total_capacitance_per_length(rule, SIO2, 2.0, model)
        )

    def test_miller_knob_moves_capacitance_only(self, rule):
        worst = extract_wire_rc(rule, COPPER, SIO2, 2.0)
        shielded = extract_wire_rc(rule, COPPER, SIO2, 1.0)
        assert shielded.capacitance < worst.capacitance
        assert shielded.resistance == pytest.approx(worst.resistance)

    def test_permittivity_knob_moves_capacitance_only(self, rule):
        oxide = extract_wire_rc(rule, COPPER, SIO2, 2.0)
        lowk = extract_wire_rc(rule, COPPER, SIO2.scaled(2.0), 2.0)
        assert lowk.capacitance < oxide.capacitance
        assert lowk.resistance == pytest.approx(oxide.resistance)
