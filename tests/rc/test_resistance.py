"""Tests for per-unit-length resistance extraction."""

import pytest

from repro import units
from repro.rc.resistance import resistance_per_length
from repro.tech.materials import ALUMINIUM, COPPER
from repro.tech.node import MetalRule


def make_rule(width_um, thickness_um):
    return MetalRule(
        min_width=units.um(width_um),
        min_spacing=units.um(width_um),
        thickness=units.um(thickness_um),
    )


class TestResistancePerLength:
    def test_value(self):
        rule = make_rule(0.2, 0.34)
        expected = COPPER.resistivity / (units.um(0.2) * units.um(0.34))
        assert resistance_per_length(rule, COPPER) == pytest.approx(expected)

    def test_realistic_magnitude_semi_global_130nm(self):
        """130 nm semi-global wires land in the 10^5 ohm/m decade."""
        rule = make_rule(0.2, 0.34)
        r = resistance_per_length(rule, COPPER)
        assert 1e5 < r < 1e6

    def test_realistic_magnitude_global_130nm(self):
        rule = make_rule(0.44, 1.02)
        r = resistance_per_length(rule, COPPER)
        assert 1e4 < r < 1e5

    def test_wider_wire_less_resistance(self):
        narrow = resistance_per_length(make_rule(0.2, 0.34), COPPER)
        wide = resistance_per_length(make_rule(0.4, 0.34), COPPER)
        assert wide == pytest.approx(narrow / 2)

    def test_thicker_wire_less_resistance(self):
        thin = resistance_per_length(make_rule(0.2, 0.2), COPPER)
        thick = resistance_per_length(make_rule(0.2, 0.4), COPPER)
        assert thick == pytest.approx(thin / 2)

    def test_material_dependence(self):
        rule = make_rule(0.28, 0.588)
        assert resistance_per_length(rule, ALUMINIUM) > resistance_per_length(
            rule, COPPER
        )
