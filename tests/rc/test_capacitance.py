"""Tests for the capacitance models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError
from repro.rc.capacitance import (
    DEFAULT_MODEL,
    ParallelPlateFringeModel,
    SakuraiModel,
    coupling_capacitance,
    ground_capacitance,
    total_capacitance_per_length,
)
from repro.tech.materials import SIO2, Dielectric
from repro.tech.node import MetalRule


@pytest.fixture
def rule():
    """130 nm local-tier geometry."""
    return MetalRule(
        min_width=units.um(0.16),
        min_spacing=units.um(0.18),
        thickness=units.um(0.336),
    )


MODELS = [ParallelPlateFringeModel(), SakuraiModel()]


@pytest.mark.parametrize("model", MODELS, ids=["plate", "sakurai"])
class TestModelsShared:
    def test_positive(self, model, rule):
        assert model.ground(rule, SIO2) > 0
        assert model.coupling(rule, SIO2) > 0

    def test_linear_in_permittivity(self, model, rule):
        low = Dielectric(name="low", relative_permittivity=1.95)
        assert model.ground(rule, SIO2) == pytest.approx(
            2 * model.ground(rule, low), rel=1e-9
        )
        assert model.coupling(rule, SIO2) == pytest.approx(
            2 * model.coupling(rule, low), rel=1e-9
        )

    def test_coupling_decreases_with_spacing(self, model, rule):
        wide = MetalRule(
            min_width=rule.min_width,
            min_spacing=rule.min_spacing * 2,
            thickness=rule.thickness,
            ild_height=rule.ild_height,
        )
        assert model.coupling(wide, SIO2) < model.coupling(rule, SIO2)

    def test_total_combines_miller(self, model, rule):
        g = model.ground(rule, SIO2)
        c = model.coupling(rule, SIO2)
        total = model.total(rule, SIO2, miller_factor=2.0)
        assert total == pytest.approx(2 * g + 4 * c)

    def test_total_monotone_in_miller(self, model, rule):
        t1 = model.total(rule, SIO2, miller_factor=1.0)
        t2 = model.total(rule, SIO2, miller_factor=2.0)
        assert t2 > t1

    def test_negative_miller_rejected(self, model, rule):
        with pytest.raises(ConfigurationError):
            model.total(rule, SIO2, miller_factor=-0.1)

    def test_realistic_magnitude(self, model, rule):
        """Dense 130 nm wiring: effective c in the 100-400 pF/m decade."""
        total = model.total(rule, SIO2, miller_factor=2.0)
        assert 5e-11 < total < 5e-10


class TestParallelPlate:
    def test_ground_formula(self, rule):
        model = ParallelPlateFringeModel(fringe_factor=0.3)
        expected = SIO2.permittivity * (rule.min_width / rule.ild_height + 0.3)
        assert model.ground(rule, SIO2) == pytest.approx(expected)

    def test_coupling_formula(self, rule):
        model = ParallelPlateFringeModel()
        expected = SIO2.permittivity * rule.thickness / rule.min_spacing
        assert model.coupling(rule, SIO2) == pytest.approx(expected)

    def test_negative_fringe_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelPlateFringeModel(fringe_factor=-0.1)

    def test_default_is_coupling_dominated(self, rule):
        """The calibration regime: coupling ~80% of total at M=2, which
        is what makes the paper's K-vs-M equivalence come out ~1:1."""
        g = DEFAULT_MODEL.ground(rule, SIO2)
        c = DEFAULT_MODEL.coupling(rule, SIO2)
        fraction = (4 * c) / (2 * g + 4 * c)
        assert 0.7 < fraction < 0.9


class TestSakurai:
    def test_fringe_exceeds_plate_for_narrow_wires(self, rule):
        """Sakurai ground cap is fringe-dominated at W/H < 1."""
        model = SakuraiModel()
        plate_only = SIO2.permittivity * rule.min_width / rule.ild_height
        assert model.ground(rule, SIO2) > plate_only

    def test_bracket_clamped_non_negative(self):
        """Extremely flat wires outside the fitted range must not
        produce negative coupling."""
        model = SakuraiModel()
        flat = MetalRule(
            min_width=units.um(0.01),
            min_spacing=units.um(10.0),
            thickness=units.um(0.001),
            ild_height=units.um(1.0),
        )
        assert model.coupling(flat, SIO2) >= 0.0


class TestModuleFunctions:
    def test_ground_uses_default_model(self, rule):
        assert ground_capacitance(rule, SIO2) == pytest.approx(
            DEFAULT_MODEL.ground(rule, SIO2)
        )

    def test_coupling_uses_default_model(self, rule):
        assert coupling_capacitance(rule, SIO2) == pytest.approx(
            DEFAULT_MODEL.coupling(rule, SIO2)
        )

    def test_total_uses_default_model(self, rule):
        assert total_capacitance_per_length(rule, SIO2, 2.0) == pytest.approx(
            DEFAULT_MODEL.total(rule, SIO2, 2.0)
        )

    def test_explicit_model_override(self, rule):
        sak = SakuraiModel()
        assert total_capacitance_per_length(rule, SIO2, 2.0, sak) == pytest.approx(
            sak.total(rule, SIO2, 2.0)
        )


@given(
    miller=st.floats(min_value=0.0, max_value=3.0),
    k=st.floats(min_value=1.0, max_value=4.0),
)
def test_total_scales_linearly_with_permittivity_property(miller, k):
    rule = MetalRule(
        min_width=units.um(0.16),
        min_spacing=units.um(0.18),
        thickness=units.um(0.336),
    )
    base = Dielectric(name="unit", relative_permittivity=1.0)
    scaled = Dielectric(name="k", relative_permittivity=k)
    t_base = total_capacitance_per_length(rule, base, miller)
    t_scaled = total_capacitance_per_length(rule, scaled, miller)
    assert t_scaled == pytest.approx(k * t_base, rel=1e-9)
