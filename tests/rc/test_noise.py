"""Tests for crosstalk noise and shielding policies."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.rc.noise import (
    DOUBLE_SHIELDED,
    SHIELDING_LADDER,
    SINGLE_SHIELDED,
    UNSHIELDED,
    ShieldingPolicy,
    peak_coupling_noise,
)
from repro.tech.materials import SIO2
from repro.tech.node import MetalRule


@pytest.fixture
def rule():
    return MetalRule(
        min_width=units.um(0.16),
        min_spacing=units.um(0.18),
        thickness=units.um(0.336),
    )


class TestPeakNoise:
    def test_bounded_by_supply(self, rule):
        noise = peak_coupling_noise(rule, SIO2, supply_voltage=1.2)
        assert 0.0 < noise < 1.2

    def test_substantial_for_dense_wiring(self, rule):
        """Coupling-dominated minimum-pitch wiring: > 40% of Vdd worst
        case — exactly why the paper sweeps the Miller factor."""
        noise = peak_coupling_noise(rule, SIO2, supply_voltage=1.0)
        assert noise > 0.4

    def test_monotone_in_aggressors(self, rule):
        values = [
            peak_coupling_noise(rule, SIO2, 1.2, aggressors=n) for n in (0, 1, 2)
        ]
        assert values[0] == 0.0
        assert values[0] < values[1] < values[2]

    def test_scales_with_supply(self, rule):
        low = peak_coupling_noise(rule, SIO2, 1.0)
        high = peak_coupling_noise(rule, SIO2, 2.0)
        assert high == pytest.approx(2 * low)

    def test_permittivity_invariant(self, rule):
        """Both C_c and C_g scale with k, so the noise *ratio* does not
        change with the dielectric — low-k buys delay, not SI."""
        oxide = peak_coupling_noise(rule, SIO2, 1.2)
        lowk = peak_coupling_noise(rule, SIO2.scaled(2.0), 1.2)
        assert oxide == pytest.approx(lowk, rel=1e-9)

    def test_wider_spacing_less_noise(self, rule):
        wide = MetalRule(
            min_width=rule.min_width,
            min_spacing=rule.min_spacing * 3,
            thickness=rule.thickness,
            ild_height=rule.ild_height,
        )
        assert peak_coupling_noise(wide, SIO2, 1.2) < peak_coupling_noise(
            rule, SIO2, 1.2
        )

    def test_validation(self, rule):
        with pytest.raises(ConfigurationError):
            peak_coupling_noise(rule, SIO2, 0.0)
        with pytest.raises(ConfigurationError):
            peak_coupling_noise(rule, SIO2, 1.2, aggressors=3)


class TestShieldingPolicies:
    def test_footnote8_endpoint(self):
        """Double-sided shielding achieves the paper's M = 1.0."""
        assert DOUBLE_SHIELDED.miller_factor == pytest.approx(1.0)
        assert DOUBLE_SHIELDED.aggressors() == 0

    def test_ladder_ordering(self):
        millers = [p.miller_factor for p in SHIELDING_LADDER]
        tracks = [p.tracks_per_signal for p in SHIELDING_LADDER]
        assert millers == sorted(millers, reverse=True)
        assert tracks == sorted(tracks)

    def test_capacity_cost(self):
        assert UNSHIELDED.capacity_factor == pytest.approx(1.0)
        assert SINGLE_SHIELDED.capacity_factor == pytest.approx(0.5)
        assert DOUBLE_SHIELDED.capacity_factor == pytest.approx(1.0 / 3.0)

    def test_aggressor_counts(self):
        assert UNSHIELDED.aggressors() == 2
        assert SINGLE_SHIELDED.aggressors() == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShieldingPolicy(name="bad", miller_factor=-1.0, tracks_per_signal=1.0)
        with pytest.raises(ConfigurationError):
            ShieldingPolicy(name="bad", miller_factor=1.0, tracks_per_signal=0.5)


class TestShieldingRankTradeoff:
    def test_shielding_has_a_price(self, node130):
        """The honest version of the paper's M sweep: M = 1.0 via
        shielding costs 3x the routing tracks; with the capacity
        penalty applied, shielding can *lose* rank on capacity-tight
        designs even though it wins on unconstrained ones."""
        from repro import ArchitectureSpec, build_architecture, compute_rank
        from repro.core.scenarios import baseline_problem
        import dataclasses

        base = baseline_problem("130nm", 100_000)

        def rank_for(policy):
            spec = ArchitectureSpec(
                node=node130, miller_factor=policy.miller_factor
            )
            problem = dataclasses.replace(
                base.with_arch(build_architecture(spec)),
                utilization=policy.capacity_factor,
            )
            return compute_rank(problem, bunch_size=2000, repeater_units=128)

        unshielded = rank_for(UNSHIELDED)
        shielded = rank_for(DOUBLE_SHIELDED)
        # with only a third of the tracks, the shielded stack must fit
        # or fail loudly — either way the comparison is meaningful
        assert unshielded.fits
        if shielded.fits:
            assert shielded.rank != unshielded.rank
        else:
            assert shielded.rank == 0
