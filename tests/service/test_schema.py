"""The v1 wire schema: validation, canonicalization, fingerprints."""

import dataclasses
import json

import pytest

from repro.errors import ReproError, SchemaError
from repro.reporting import load_request, save_request
from repro.schema import (
    REQUEST_TYPES,
    SCHEMA_VERSION,
    CornersRequest,
    OptimizeRequest,
    RankRequest,
    RankResponse,
    SweepRequest,
    canonical_json_bytes,
    parse_frequency,
)


class TestParseFrequency:
    def test_number_passes_through(self):
        assert parse_frequency(5e8) == 5e8

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("500MHz", 5e8),
            ("0.5GHz", 5e8),
            ("500 MHz", 5e8),
            ("1.2GHz", 1.2e9),
            ("250000kHz", 2.5e8),
            ("5e8", 5e8),
            ("5e8Hz", 5e8),
        ],
    )
    def test_suffixed_spellings(self, text, expected):
        assert parse_frequency(text) == pytest.approx(expected)

    @pytest.mark.parametrize("bad", ["fast", "", "MHz", "-500MHz", "0GHz", None])
    def test_rejects_garbage(self, bad):
        with pytest.raises(SchemaError):
            parse_frequency(bad)


class TestRankRequest:
    def test_defaults_are_the_paper_baseline(self):
        request = RankRequest()
        assert request.node == "130nm"
        assert request.gates == 1_000_000
        assert request.clock_frequency == pytest.approx(5e8)
        assert request.solver == "dp"

    def test_from_wire_round_trips_canonically(self):
        wire = {"gates": 50_000, "clock_frequency": "500MHz"}
        request = RankRequest.from_wire(wire)
        canonical = request.canonicalize()
        again = RankRequest.from_wire(canonical)
        assert again == request
        assert again.canonical_json() == request.canonical_json()

    def test_equal_meaning_equal_fingerprint(self):
        spelled = RankRequest.from_wire({"clock_frequency": "500MHz"})
        numeric = RankRequest.from_wire({"clock_frequency": 5e8})
        assert spelled.fingerprint() == numeric.fingerprint()

    def test_transport_fields_do_not_fragment_the_fingerprint(self):
        plain = RankRequest()
        with_transport = RankRequest(deadline_s=5.0, backend="python")
        assert plain.fingerprint() == with_transport.fingerprint()
        assert "deadline_s" not in plain.canonicalize()
        assert "backend" not in plain.canonicalize()

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(SchemaError, match="gatez"):
            RankRequest.from_wire({"gatez": 10})

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(SchemaError, match="schema_version"):
            RankRequest.from_wire({"schema_version": 99})

    def test_missing_schema_version_means_current(self):
        request = RankRequest.from_wire({})
        assert request.canonicalize()["schema_version"] == SCHEMA_VERSION

    @pytest.mark.parametrize(
        "field,value",
        [
            ("gates", 0),
            ("gates", -1),
            ("clock_frequency", 0),
            ("repeater_fraction", 1.5),
            ("permittivity", 0.5),
            ("solver", "exhaustive"),
            ("local_pairs", -1),
            ("repeater_units", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(SchemaError, match=field):
            RankRequest.from_wire({field: value})

    def test_bunch_size_zero_and_none_canonicalize_alike(self):
        off = RankRequest.from_wire({"bunch_size": 0})
        none = RankRequest.from_wire({"bunch_size": None})
        assert off.fingerprint() == none.fingerprint()
        assert off.bunch_size is None

    def test_canonical_json_is_sorted_and_compact(self):
        body = RankRequest().canonical_json()
        payload = json.loads(body)
        assert list(payload) == sorted(payload)
        assert b" " not in body


class TestSweepRequest:
    def test_point_request_maps_the_knob(self):
        sweep = SweepRequest(knob="K", values=(3.9, 2.8), gates=10_000)
        point = sweep.point_request(2.8)
        assert isinstance(point, RankRequest)
        assert point.permittivity == 2.8
        assert point.gates == 10_000

    def test_point_request_matches_direct_rank_request(self):
        sweep = SweepRequest(knob="C", values=(4e8,), gates=10_000)
        direct = RankRequest(clock_frequency=4e8, gates=10_000)
        assert sweep.point_request(4e8).fingerprint() == direct.fingerprint()

    def test_clock_values_accept_suffixed_spellings(self):
        sweep = SweepRequest.from_wire(
            {"knob": "C", "values": ["400MHz", 5e8]}
        )
        assert sweep.values == (4e8, 5e8)

    def test_empty_values_rejected(self):
        with pytest.raises(SchemaError, match="values"):
            SweepRequest.from_wire({"knob": "C", "values": []})

    def test_unknown_knob_rejected(self):
        with pytest.raises(SchemaError, match="knob"):
            SweepRequest.from_wire({"knob": "Z", "values": [1.0]})

    def test_allow_partial_is_transport_only(self):
        a = SweepRequest(knob="R", values=(0.3,), allow_partial=True)
        b = SweepRequest(knob="R", values=(0.3,), allow_partial=False)
        assert a.fingerprint() == b.fingerprint()


class TestCornersRequest:
    def test_empty_selection_means_all_standard_corners(self):
        request = CornersRequest()
        names = request.selected_corner_names()
        assert "nominal" in names
        assert len(names) >= 5

    def test_selection_canonicalizes_to_standard_order(self):
        forward = CornersRequest(corners=("nominal", "fast-clock"))
        backward = CornersRequest(corners=("fast-clock", "nominal"))
        assert forward.fingerprint() == backward.fingerprint()

    def test_unknown_corner_rejected(self):
        with pytest.raises(SchemaError, match="corners"):
            CornersRequest(corners=("sideways",))

    def test_duplicate_corners_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            CornersRequest(corners=("nominal", "nominal"))


class TestOptimizeRequest:
    def test_choice_lists_canonicalize_as_sets(self):
        a = OptimizeRequest(permittivities=(3.9, 2.8), miller_factors=(2.0, 1.0))
        b = OptimizeRequest(permittivities=(2.8, 3.9, 3.9), miller_factors=(1.0, 2.0))
        assert a.fingerprint() == b.fingerprint()

    def test_empty_choices_rejected(self):
        with pytest.raises(SchemaError, match="permittivities"):
            OptimizeRequest.from_wire({"permittivities": []})


class TestRankResponse:
    def test_wire_round_trip(self):
        response = RankResponse(
            fingerprint="ab" * 32,
            rank=64_009,
            normalized=0.4324,
            total_wires=148_021,
            fits=True,
            error_bound=2_000,
            solver="dp",
        )
        wire = response.to_wire()
        assert wire["schema_version"] == SCHEMA_VERSION
        assert RankResponse.from_wire(wire) == response

    def test_no_timing_or_cache_metadata_in_body(self):
        wire = RankResponse(
            fingerprint="f" * 64, rank=1, normalized=0.5, total_wires=2,
            fits=True, error_bound=0, solver="dp",
        ).to_wire()
        for forbidden in ("elapsed", "cached", "runtime", "timestamp"):
            assert not any(forbidden in key for key in wire)

    def test_missing_field_rejected_by_name(self):
        with pytest.raises(SchemaError, match="rank"):
            RankResponse.from_wire({"schema_version": 1, "fingerprint": "x"})


class TestRequestTypes:
    def test_covers_every_solve_endpoint(self):
        assert sorted(REQUEST_TYPES) == ["corners", "optimize", "rank", "sweep"]

    def test_all_types_are_frozen(self):
        for request_type in REQUEST_TYPES.values():
            with pytest.raises(dataclasses.FrozenInstanceError):
                instance = request_type.__new__(request_type)
                object.__setattr__(instance, "node", "130nm")
                instance.node = "90nm"


class TestCanonicalJsonBytes:
    def test_deterministic_across_key_order(self):
        a = canonical_json_bytes({"b": 1, "a": 2})
        b = canonical_json_bytes({"a": 2, "b": 1})
        assert a == b

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json_bytes({"x": float("nan")})


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        request = SweepRequest(knob="C", values=(4e8, 5e8), gates=25_000)
        path = tmp_path / "request.json"
        save_request(request, path)
        loaded = load_request(path)
        assert isinstance(loaded, SweepRequest)
        assert loaded.fingerprint() == request.fingerprint()

    def test_persisted_form_is_canonical(self, tmp_path):
        request = RankRequest.from_wire({"clock_frequency": "500MHz"})
        path = tmp_path / "request.json"
        save_request(request, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.request"
        assert payload["kind"] == "rank"
        assert payload["request"] == request.canonicalize()

    def test_save_rejects_non_request(self, tmp_path):
        with pytest.raises(ReproError, match="request type"):
            save_request({"gates": 1}, tmp_path / "x.json")

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": "repro.request", "version": 1,
            "kind": "frobnicate", "request": {},
        }))
        with pytest.raises(ReproError, match="frobnicate"):
            load_request(path)

    def test_load_revalidates_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": "repro.request", "version": 1,
            "kind": "rank", "request": {"gates": -1},
        }))
        with pytest.raises(ReproError, match="gates"):
            load_request(path)
