"""Unit tests for the hand-rolled HTTP/1.1 layer."""

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_HEADERS,
    HttpError,
    json_error_body,
    read_request,
    render_response,
)


def parse(raw, max_body_bytes=1 << 20):
    """Feed raw bytes to the parser on a fresh reader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(run())


def parse_error(raw, max_body_bytes=1 << 20):
    with pytest.raises(HttpError) as excinfo:
        parse(raw, max_body_bytes=max_body_bytes)
    return excinfo.value


class TestReadRequest:
    def test_post_with_body(self):
        body = b'{"gates": 1000}'
        raw = (
            b"POST /v1/rank HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/rank"
        assert request.body == body
        assert request.keep_alive is True

    def test_get_without_body(self):
        request = parse(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_query_string_is_stripped(self):
        request = parse(b"GET /v1/metrics?pretty=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/metrics"

    def test_header_names_are_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Custom-Thing: abc\r\n\r\n")
        assert request.headers["x-custom-thing"] == "abc"

    def test_http10_defaults_to_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert request.keep_alive is False

    def test_http10_keep_alive_opt_in(self):
        request = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive is True

    def test_http11_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_malformed_request_line(self):
        assert parse_error(b"GARBAGE\r\n\r\n").status == 400

    def test_unsupported_protocol_version(self):
        assert parse_error(b"GET / HTTP/2.0\r\n\r\n").status == 400

    def test_non_ascii_request_line(self):
        assert parse_error("GET /é HTTP/1.1\r\n\r\n".encode()).status == 400

    def test_malformed_header_line(self):
        assert parse_error(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").status == 400

    def test_closed_mid_headers(self):
        error = parse_error(b"GET / HTTP/1.1\r\nHost: t\r\n")
        assert error.status == 400
        assert "mid-headers" in error.message

    def test_closed_mid_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        error = parse_error(raw)
        assert error.status == 400
        assert "mid-body" in error.message

    def test_bad_content_length(self):
        assert parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n"
        ).status == 400
        assert parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        ).status == 400

    def test_oversize_body_rejected_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\n" + b"x" * 50
        error = parse_error(raw, max_body_bytes=10)
        assert error.status == 413

    def test_chunked_transfer_rejected_501(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        assert parse_error(raw).status == 501

    def test_too_many_headers(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % index for index in range(MAX_HEADERS + 1)
        )
        error = parse_error(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert error.status == 400

    def test_oversize_header_line(self):
        raw = b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 9000 + b"\r\n\r\n"
        assert parse_error(raw).status == 400


class TestRenderResponse:
    def test_shape_and_length(self):
        body = b'{"ok": true}'
        raw = render_response(200, body)
        head, _, tail = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: %d" % len(body) in head
        assert b"Connection: keep-alive" in head
        assert tail == body

    def test_close_and_extra_headers(self):
        raw = render_response(
            429, b"{}", keep_alive=False,
            extra_headers=(("Retry-After", "1"),),
        )
        head = raw.partition(b"\r\n\r\n")[0]
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Connection: close" in head
        assert b"Retry-After: 1" in head

    def test_parses_back_with_own_reader(self):
        """render + read are inverse enough for a loopback check."""
        raw = render_response(200, b"abc", content_type="text/plain")
        # The response head re-read as request headers (same wire syntax).
        lines = raw.partition(b"\r\n\r\n")[0].split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"


class TestJsonErrorBody:
    def test_uniform_payload(self):
        payload = json.loads(json_error_body(404, "NotFound", "no such route"))
        assert payload == {
            "status": 404,
            "error": "NotFound",
            "message": "no such route",
        }
