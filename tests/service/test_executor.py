"""SolveExecutor: mode resolution, backpressure, lifecycle."""

import threading
import time

import pytest

from repro.errors import ReproError
from repro.service.executor import ServiceOverloaded, SolveExecutor, resolve_mode


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def release_after(event):
    """Module-level so it stays picklable if a process pool runs it."""
    event.wait(10.0)
    return "done"


class TestResolveMode:
    def test_explicit_modes_pass_through(self):
        assert resolve_mode("thread", 8) == "thread"
        assert resolve_mode("process", 1) == "process"

    def test_auto_single_worker_is_thread(self):
        assert resolve_mode("auto", 1) == "thread"

    def test_auto_multi_worker_respects_cpus(self):
        resolved = resolve_mode("auto", 4)
        assert resolved in ("thread", "process")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="mode"):
            resolve_mode("fibers", 2)


class TestConstruction:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ReproError, match="workers"):
            SolveExecutor(workers=0)

    def test_rejects_negative_queue_depth(self):
        with pytest.raises(ReproError, match="queue_depth"):
            SolveExecutor(workers=1, queue_depth=-1)

    def test_capacity_is_workers_plus_queue(self):
        executor = SolveExecutor(workers=2, queue_depth=3, mode="thread")
        assert executor.capacity == 5

    def test_submit_before_start_rejected(self):
        executor = SolveExecutor(workers=1, mode="thread")
        with pytest.raises(ReproError, match="not running"):
            executor.submit(sorted, [3, 1, 2])


class TestBackpressure:
    def test_submits_beyond_capacity_rejected(self):
        executor = SolveExecutor(workers=1, queue_depth=1, mode="thread")
        executor.start()
        gate = threading.Event()
        try:
            running = executor.submit(release_after, gate)   # occupies worker
            queued = executor.submit(release_after, gate)    # occupies queue
            with pytest.raises(ServiceOverloaded) as excinfo:
                executor.submit(release_after, gate)
            assert excinfo.value.retry_after_s > 0
            gate.set()
            assert running.result(timeout=5) == "done"
            assert queued.result(timeout=5) == "done"
        finally:
            gate.set()
            executor.close()

    def test_capacity_frees_as_jobs_finish(self):
        executor = SolveExecutor(workers=1, queue_depth=0, mode="thread")
        executor.start()
        gate = threading.Event()
        try:
            first = executor.submit(release_after, gate)
            with pytest.raises(ServiceOverloaded):
                executor.submit(release_after, gate)
            gate.set()
            assert first.result(timeout=5) == "done"
            assert wait_until(lambda: executor.stats()["inflight"] == 0)
            again = executor.submit(sorted, [2, 1])
            assert again.result(timeout=5) == [1, 2]
        finally:
            gate.set()
            executor.close()

    def test_failed_job_still_frees_capacity(self):
        executor = SolveExecutor(workers=1, queue_depth=0, mode="thread")
        executor.start()
        try:
            bad = executor.submit(int, "not a number")
            with pytest.raises(ValueError):
                bad.result(timeout=5)
            assert wait_until(lambda: executor.stats()["inflight"] == 0)
        finally:
            executor.close()


class TestLifecycle:
    def test_stats_shape(self):
        executor = SolveExecutor(workers=2, queue_depth=4, mode="thread")
        executor.start()
        try:
            stats = executor.stats()
            assert stats["mode"] == "thread"
            assert stats["workers"] == 2
            assert stats["capacity"] == 6
            assert stats["inflight"] == 0
        finally:
            executor.close()

    def test_submit_after_close_rejected(self):
        executor = SolveExecutor(workers=1, mode="thread")
        executor.start()
        executor.close()
        with pytest.raises(ReproError, match="not running"):
            executor.submit(sorted, [1])
