"""End-to-end service tests over real sockets.

Each test boots a :class:`repro.service.RankService` on an ephemeral
port inside ``asyncio.run`` and speaks raw HTTP/1.1 to it — the same
pipeline ``ia-rank serve`` runs, minus the signal handling.
"""

import asyncio
import json
import threading

import pytest

from repro import obs
from repro.schema import SCHEMA_VERSION

from tests.service.client import (
    Client,
    rank_body,
    running_service,
    wait_until_async,
)


def gate_job(event):
    """Occupies an executor worker until the test releases it."""
    event.wait(10.0)
    return {"held": True}


def counter(metrics, name):
    return metrics["metrics"]["counters"].get(name, 0)


class TestRankMemoization:
    def test_miss_then_hit_byte_identical(self):
        async def scenario():
            async with running_service() as (service, client):
                body = rank_body(clock_frequency="480MHz")
                status, headers, first = await client.request(
                    "POST", "/v1/rank", body
                )
                assert status == 200
                assert headers["x-repro-cache"] == "miss"
                status, headers, again = await client.request(
                    "POST", "/v1/rank", body
                )
                assert status == 200
                assert headers["x-repro-cache"] == "hit"
                assert again == first

                payload = json.loads(first)
                assert payload["schema_version"] == SCHEMA_VERSION
                assert payload["rank"] > 0
                assert 0.0 < payload["normalized"] <= 1.0

                _, _, raw = await client.request("GET", "/v1/metrics")
                metrics = json.loads(raw)
                assert counter(metrics, "service.cache.hits") >= 1
                assert counter(metrics, "service.cache.misses") >= 1
                assert counter(metrics, "service.requests.rank") == 2

        asyncio.run(scenario())

    def test_equivalent_spellings_share_the_memo_entry(self):
        async def scenario():
            async with running_service() as (service, client):
                status, headers, first = await client.request(
                    "POST", "/v1/rank", rank_body(clock_frequency="470MHz")
                )
                assert (status, headers["x-repro-cache"]) == (200, "miss")
                status, headers, again = await client.request(
                    "POST", "/v1/rank", rank_body(clock_frequency=4.7e8)
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")
                assert again == first

        asyncio.run(scenario())

    def test_timing_lives_in_headers_not_the_body(self):
        async def scenario():
            async with running_service() as (service, client):
                _, headers, body = await client.request(
                    "POST", "/v1/rank", rank_body()
                )
                assert "x-repro-elapsed-s" in headers
                payload = json.loads(body)
                assert "elapsed" not in json.dumps(payload)

        asyncio.run(scenario())


class TestErrors:
    def test_schema_error_is_400_with_field_name(self):
        async def scenario():
            async with running_service() as (service, client):
                status, _, body = await client.request(
                    "POST", "/v1/rank", b'{"gates": -5}'
                )
                assert status == 400
                payload = json.loads(body)
                assert payload["error"] == "SchemaError"
                assert "gates" in payload["message"]

        asyncio.run(scenario())

    def test_invalid_json_is_400(self):
        async def scenario():
            async with running_service() as (service, client):
                status, _, body = await client.request(
                    "POST", "/v1/rank", b"{not json"
                )
                assert status == 400
                assert json.loads(body)["status"] == 400

        asyncio.run(scenario())

    def test_unknown_path_is_404(self):
        async def scenario():
            async with running_service() as (service, client):
                status, _, _ = await client.request("GET", "/v1/nope")
                assert status == 404

        asyncio.run(scenario())

    def test_wrong_method_is_405_with_allow(self):
        async def scenario():
            async with running_service() as (service, client):
                status, headers, _ = await client.request("GET", "/v1/rank")
                assert status == 405
                assert headers["allow"] == "POST"

        asyncio.run(scenario())

    def test_oversize_body_is_413_and_closes(self):
        async def scenario():
            async with running_service(max_body_bytes=64) as (service, client):
                status, _, _ = await client.request(
                    "POST", "/v1/rank", b"x" * 100
                )
                assert status == 413
                assert await client.at_eof()

        asyncio.run(scenario())


class TestDeadlines:
    def test_expired_deadline_is_504(self):
        async def scenario():
            async with running_service() as (service, client):
                status, _, body = await client.request(
                    "POST", "/v1/rank", rank_body(deadline_s=1e-9)
                )
                assert status == 504
                assert json.loads(body)["error"] == "DeadlineExceeded"
                _, _, raw = await client.request("GET", "/v1/metrics")
                assert counter(json.loads(raw), "service.deadline.expired") >= 1

        asyncio.run(scenario())

    def test_sweep_allow_partial_returns_prefix(self):
        async def scenario():
            async with running_service() as (service, client):
                body = json.dumps({
                    "knob": "C",
                    "values": ["450MHz", "500MHz"],
                    "gates": 20_000,
                    "deadline_s": 1e-9,
                    "allow_partial": True,
                }).encode()
                status, headers, raw = await client.request(
                    "POST", "/v1/sweep", body
                )
                assert status == 200
                payload = json.loads(raw)
                assert payload["partial"] is True
                assert payload["points"] == []
                # Partial results must not poison the memo.
                assert headers["x-repro-cache"] == "miss"
                status, headers, _ = await client.request(
                    "POST", "/v1/sweep", body
                )
                assert headers["x-repro-cache"] == "miss"

        asyncio.run(scenario())

    def test_sweep_without_allow_partial_is_504(self):
        async def scenario():
            async with running_service() as (service, client):
                body = json.dumps({
                    "knob": "C",
                    "values": ["450MHz"],
                    "gates": 20_000,
                    "deadline_s": 1e-9,
                    "allow_partial": False,
                }).encode()
                status, _, raw = await client.request("POST", "/v1/sweep", body)
                assert status == 504
                assert json.loads(raw)["error"] == "DeadlineExceeded"

        asyncio.run(scenario())


class TestSweep:
    def test_sweep_completes_and_memoizes(self):
        async def scenario():
            async with running_service() as (service, client):
                body = json.dumps({
                    "knob": "K",
                    "values": [3.9, 2.8],
                    "gates": 20_000,
                    "bunch_size": 2_000,
                }).encode()
                status, headers, raw = await client.request(
                    "POST", "/v1/sweep", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "miss")
                payload = json.loads(raw)
                assert payload["partial"] is False
                assert [p["value"] for p in payload["points"]] == [3.9, 2.8]
                # Lower permittivity -> faster wires -> higher rank.
                assert payload["points"][1]["rank"] >= payload["points"][0]["rank"]
                status, headers, again = await client.request(
                    "POST", "/v1/sweep", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")
                assert again == raw

        asyncio.run(scenario())

    def test_sweep_points_share_the_rank_memo(self):
        async def scenario():
            async with running_service() as (service, client):
                sweep = json.dumps({
                    "knob": "C",
                    "values": ["460MHz"],
                    "gates": 20_000,
                    "bunch_size": 2_000,
                }).encode()
                status, _, _ = await client.request("POST", "/v1/sweep", sweep)
                assert status == 200
                # The equivalent plain rank request replays from memo.
                status, headers, _ = await client.request(
                    "POST", "/v1/rank",
                    rank_body(clock_frequency="460MHz"),
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")

        asyncio.run(scenario())


class TestCorners:
    def test_corner_rollup(self):
        async def scenario():
            async with running_service() as (service, client):
                body = json.dumps({
                    "corners": ["fast-clock", "nominal"],
                    "gates": 20_000,
                    "bunch_size": 2_000,
                }).encode()
                status, headers, raw = await client.request(
                    "POST", "/v1/corners", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "miss")
                payload = json.loads(raw)
                names = [c["corner"] for c in payload["corners"]]
                assert sorted(names) == ["fast-clock", "nominal"]
                assert payload["worst"] in names
                assert payload["guardband"] >= 0.0
                status, headers, again = await client.request(
                    "POST", "/v1/corners", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")
                assert again == raw

        asyncio.run(scenario())

    def test_selections_share_per_corner_results(self):
        async def scenario():
            async with running_service() as (service, client):
                base = {"gates": 20_000, "bunch_size": 2_000}
                status, _, _ = await client.request(
                    "POST", "/v1/corners",
                    json.dumps({**base, "corners": ["nominal"]}).encode(),
                )
                assert status == 200
                _, _, raw = await client.request("GET", "/v1/metrics")
                hits_before = counter(json.loads(raw), "service.cache.hits")
                # A wider selection re-uses the nominal per-corner entry.
                status, _, _ = await client.request(
                    "POST", "/v1/corners",
                    json.dumps(
                        {**base, "corners": ["nominal", "fast-clock"]}
                    ).encode(),
                )
                assert status == 200
                _, _, raw = await client.request("GET", "/v1/metrics")
                assert counter(json.loads(raw), "service.cache.hits") > hits_before

        asyncio.run(scenario())


class TestOptimize:
    def test_tiny_space_end_to_end(self):
        async def scenario():
            async with running_service() as (service, client):
                body = json.dumps({
                    "local_pairs_choices": [1],
                    "semi_global_pairs_choices": [1],
                    "global_pairs_choices": [1],
                    "permittivities": [2.8],
                    "miller_factors": [1.0],
                    "gates": 20_000,
                    "bunch_size": 2_000,
                    "exhaustive_limit": 4,
                }).encode()
                status, headers, raw = await client.request(
                    "POST", "/v1/optimize", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "miss")
                payload = json.loads(raw)
                assert payload["evaluated"] >= 1
                assert payload["best"]["rank"] > 0
                assert payload["pareto"]
                status, headers, again = await client.request(
                    "POST", "/v1/optimize", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")
                assert again == raw

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self):
        async def scenario():
            async with running_service(
                workers=1, queue_depth=0
            ) as (service, client):
                gate = threading.Event()
                held = service.app.executor.submit(gate_job, gate)
                try:
                    status, headers, body = await client.request(
                        "POST", "/v1/rank", rank_body(clock_frequency="490MHz")
                    )
                    assert status == 429
                    assert float(headers["retry-after"]) > 0
                    assert json.loads(body)["error"] == "ServiceOverloaded"
                finally:
                    gate.set()
                    held.result(timeout=5)
                await wait_until_async(
                    lambda: service.app.executor.stats()["inflight"] == 0
                )
                # Capacity freed: the same request now succeeds.
                status, _, _ = await client.request(
                    "POST", "/v1/rank", rank_body(clock_frequency="490MHz")
                )
                assert status == 200
                _, _, raw = await client.request("GET", "/v1/metrics")
                assert counter(
                    json.loads(raw), "service.backpressure.rejections"
                ) >= 1

        asyncio.run(scenario())


class TestDedup:
    def test_concurrent_identical_requests_coalesce(self):
        async def scenario():
            async with running_service(
                workers=1, queue_depth=2
            ) as (service, client):
                gate = threading.Event()
                # Block the only worker so the solve cannot finish
                # before both requests are in flight.
                held = service.app.executor.submit(gate_job, gate)
                try:
                    other = Client(service.config.host, service.port)
                    await other.connect()
                    body = rank_body(clock_frequency="440MHz")
                    first = asyncio.ensure_future(
                        client.request("POST", "/v1/rank", body)
                    )
                    second = asyncio.ensure_future(
                        other.request("POST", "/v1/rank", body)
                    )

                    def coalesced():
                        counters = obs.snapshot()["counters"]
                        return counters.get("service.dedup.coalesced", 0) >= 1

                    assert await wait_until_async(coalesced)
                    gate.set()
                    (s1, h1, b1), (s2, h2, b2) = await asyncio.gather(
                        first, second
                    )
                    await other.close()
                finally:
                    gate.set()
                    held.result(timeout=5)
                assert (s1, s2) == (200, 200)
                assert b1 == b2
                assert {h1["x-repro-cache"], h2["x-repro-cache"]} == {
                    "miss", "coalesced"
                }

        asyncio.run(scenario())


class TestIntrospection:
    def test_healthz(self):
        async def scenario():
            async with running_service() as (service, client):
                status, _, raw = await client.request("GET", "/v1/healthz")
                assert status == 200
                payload = json.loads(raw)
                assert payload["status"] == "ok"
                assert payload["schema_version"] == SCHEMA_VERSION
                assert payload["executor"]["mode"] == "thread"

        asyncio.run(scenario())

    def test_metrics_shape(self):
        async def scenario():
            async with running_service() as (service, client):
                await client.request("POST", "/v1/rank", rank_body())
                status, _, raw = await client.request("GET", "/v1/metrics")
                assert status == 200
                payload = json.loads(raw)
                assert set(payload) >= {
                    "metrics", "latency", "cache", "executor", "precompute",
                }
                assert "service.requests" in payload["metrics"]["counters"]
                assert "rank" in payload["latency"]
                assert payload["cache"]["entries"] >= 1

        asyncio.run(scenario())


class TestConnectionHandling:
    def test_keep_alive_serves_many_requests(self):
        async def scenario():
            async with running_service() as (service, client):
                for _ in range(3):
                    status, _, _ = await client.request("GET", "/v1/healthz")
                    assert status == 200

        asyncio.run(scenario())

    def test_connection_close_is_honored(self):
        async def scenario():
            async with running_service() as (service, client):
                status, headers, _ = await client.request(
                    "GET", "/v1/healthz",
                    extra_headers=(("Connection", "close"),),
                )
                assert status == 200
                assert headers["connection"] == "close"
                assert await client.at_eof()

        asyncio.run(scenario())

    def test_malformed_request_answers_400_and_closes(self):
        async def scenario():
            async with running_service() as (service, client):
                client._writer.write(b"NONSENSE\r\n\r\n")
                await client._writer.drain()
                line = await client._reader.readline()
                assert b"400" in line

        asyncio.run(scenario())
