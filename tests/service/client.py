"""Test helpers: a minimal keep-alive HTTP client + service harness."""

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from repro.service import RankService, ServiceConfig

#: Fast solve defaults for integration tests.
SMALL_GATES = 20_000


def rank_body(**overrides) -> bytes:
    payload = {"gates": SMALL_GATES, "bunch_size": 2_000}
    payload.update(overrides)
    return json.dumps(payload).encode("utf-8")


class Client:
    """One keep-alive HTTP/1.1 connection, just enough for the tests."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass

    async def at_eof(self) -> bool:
        """Whether the server closed its side (drains any buffered data)."""
        assert self._reader is not None
        try:
            data = await asyncio.wait_for(self._reader.read(1), timeout=2.0)
        except asyncio.TimeoutError:
            return False
        return data == b""

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            "Host: test",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        for name, value in extra_headers:
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("ascii") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        payload = await self._reader.readexactly(int(headers["content-length"]))
        return status, headers, payload


class running_service:
    """``async with running_service(...) as (service, client):``"""

    def __init__(self, **overrides) -> None:
        overrides.setdefault("port", 0)
        overrides.setdefault("executor_mode", "thread")
        self._config = ServiceConfig(**overrides)
        self._service: Optional[RankService] = None
        self._client: Optional[Client] = None

    async def __aenter__(self):
        self._service = RankService(self._config)
        await self._service.start()
        self._client = Client(self._config.host, self._service.port)
        await self._client.connect()
        return self._service, self._client

    async def __aexit__(self, *exc_info) -> None:
        if self._client is not None:
            await self._client.close()
        if self._service is not None:
            await self._service.stop()


async def wait_until_async(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return False
