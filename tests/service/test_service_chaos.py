"""Chaos leg: deterministic fault injection through the serving stack.

The service runs thread-mode executors here so the installed schedule
(a process-global) is visible to the workers; the faults exercise the
error containment of :meth:`RankApp.dispatch` — an injected failure
answers 500 without killing the connection, the server recovers on the
next request, and failures are never memoized.
"""

import asyncio
import json

from repro.faultkit import FaultSchedule, FaultSpec, activated

from tests.service.client import rank_body, running_service


def raise_at(site, times=1):
    return FaultSchedule(
        specs=(FaultSpec(site=site, kind="raise", times=times),), seed=7
    )


class TestSolveFaults:
    def test_injected_solve_fault_answers_500_then_recovers(self):
        async def scenario():
            async with running_service() as (service, client):
                body = rank_body(clock_frequency="430MHz")
                with activated(raise_at("service.solve.start")):
                    status, _, raw = await client.request(
                        "POST", "/v1/rank", body
                    )
                    assert status == 500
                    payload = json.loads(raw)
                    assert payload["error"] == "InjectedFault"
                    # The failure must not be memoized: the retry below
                    # recomputes (and succeeds, the spec fired once).
                    status, headers, _ = await client.request(
                        "POST", "/v1/rank", body
                    )
                    assert (status, headers["x-repro-cache"]) == (200, "miss")
                status, headers, _ = await client.request(
                    "POST", "/v1/rank", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")

        asyncio.run(scenario())

    def test_sweep_records_injected_fault_as_point_failure(self):
        async def scenario():
            async with running_service() as (service, client):
                body = json.dumps({
                    "knob": "K",
                    "values": [3.9, 2.8],
                    "gates": 20_000,
                    "bunch_size": 2_000,
                }).encode()
                with activated(raise_at("service.solve.start")):
                    status, headers, raw = await client.request(
                        "POST", "/v1/sweep", body
                    )
                assert status == 200
                payload = json.loads(raw)
                # First point failed by injection, second succeeded.
                assert len(payload["failures"]) == 1
                assert payload["failures"][0]["error"] == "InjectedFault"
                assert len(payload["points"]) == 1
                assert payload["partial"] is False
                # A sweep with failures is not memoized; the clean retry
                # recomputes the failed point and then memoizes.
                status, headers, raw = await client.request(
                    "POST", "/v1/sweep", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "miss")
                assert len(json.loads(raw)["points"]) == 2
                status, headers, _ = await client.request(
                    "POST", "/v1/sweep", body
                )
                assert (status, headers["x-repro-cache"]) == (200, "hit")

        asyncio.run(scenario())


class TestRequestFaults:
    def test_injected_dispatch_fault_answers_500(self):
        async def scenario():
            async with running_service() as (service, client):
                with activated(raise_at("service.request.start")):
                    status, _, raw = await client.request("GET", "/v1/healthz")
                    assert status == 500
                    assert json.loads(raw)["error"] == "InjectedFault"
                status, _, _ = await client.request("GET", "/v1/healthz")
                assert status == 200

        asyncio.run(scenario())
