"""Golden-file round trips: wire JSON -> dataclass -> canonical bytes.

Each ``golden/<kind>_request.json`` is a request as a client might
spell it (suffixed frequencies, unordered corner lists, duplicate
choice values); ``golden/<kind>_canonical.json`` is the committed
canonical form.  The canonical bytes are the memoization key of the
serving layer, so any drift here is a silent cache-invalidation event
— regenerate the goldens deliberately, never casually.
"""

import json
from pathlib import Path

import pytest

from repro.schema import REQUEST_TYPES

GOLDEN_DIR = Path(__file__).parent / "golden"
KINDS = sorted(REQUEST_TYPES)


@pytest.mark.parametrize("kind", KINDS)
def test_golden_pair_exists(kind):
    assert (GOLDEN_DIR / f"{kind}_request.json").is_file()
    assert (GOLDEN_DIR / f"{kind}_canonical.json").is_file()


@pytest.mark.parametrize("kind", KINDS)
def test_wire_to_canonical_bytes_match_golden(kind):
    wire = json.loads((GOLDEN_DIR / f"{kind}_request.json").read_text())
    request = REQUEST_TYPES[kind].from_wire(wire)
    expected = (GOLDEN_DIR / f"{kind}_canonical.json").read_bytes().rstrip(b"\n")
    assert request.canonical_json() == expected


@pytest.mark.parametrize("kind", KINDS)
def test_canonical_form_is_a_fixed_point(kind):
    """Re-parsing the canonical golden reproduces itself byte for byte."""
    canonical = json.loads((GOLDEN_DIR / f"{kind}_canonical.json").read_text())
    request = REQUEST_TYPES[kind].from_wire(canonical)
    expected = (GOLDEN_DIR / f"{kind}_canonical.json").read_bytes().rstrip(b"\n")
    assert request.canonical_json() == expected


@pytest.mark.parametrize("kind", KINDS)
def test_fingerprint_stable_across_spellings(kind):
    """The raw wire spelling and the canonical form share a fingerprint."""
    wire = json.loads((GOLDEN_DIR / f"{kind}_request.json").read_text())
    canonical = json.loads((GOLDEN_DIR / f"{kind}_canonical.json").read_text())
    request_type = REQUEST_TYPES[kind]
    assert (
        request_type.from_wire(wire).fingerprint()
        == request_type.from_wire(canonical).fingerprint()
    )
