"""Tests for architecture search."""

import pytest

from repro.core.scenarios import baseline_problem
from repro.errors import RankComputationError
from repro.optimize.search import (
    CandidateResult,
    evaluate_candidates,
    hill_climb,
    optimize_architecture,
    pareto_front,
)
from repro.optimize.space import DesignSpace

FAST = dict(bunch_size=2000, repeater_units=128)


@pytest.fixture(scope="module")
def problem():
    return baseline_problem("130nm", 100_000)


@pytest.fixture(scope="module")
def space(problem):
    return DesignSpace(
        node=problem.die.node,
        local_pairs=(1,),
        semi_global_pairs=(1, 2),
        global_pairs=(1,),
        permittivities=(3.9, 2.8),
        max_metal_layers=10,
    )


@pytest.fixture(scope="module")
def outcome(problem, space):
    return optimize_architecture(problem, space, **FAST)


class TestEvaluate:
    def test_all_candidates_evaluated(self, problem, space):
        results = evaluate_candidates(problem, list(space), **FAST)
        assert len(results) == space.size()
        assert all(isinstance(r, CandidateResult) for r in results)

    def test_labels(self, problem, space):
        results = evaluate_candidates(problem, [space.default_spec()], **FAST)
        label = results[0].label()
        assert "G1" in label and "k=3.9" in label

    def test_metal_layers(self, problem, space):
        results = evaluate_candidates(problem, [space.default_spec()], **FAST)
        assert results[0].metal_layers == 2 * 3


class TestOptimize:
    def test_best_is_max_rank(self, outcome):
        assert outcome.best.result.rank == max(
            c.result.rank for c in outcome.evaluated
        )

    def test_lowk_wins(self, outcome):
        """In the paper's regime the dielectric knob dominates extra
        metal: the best candidate buys the low-k class."""
        assert outcome.best.spec.permittivity == pytest.approx(2.8)

    def test_pareto_subset_and_sorted(self, outcome):
        assert set(id(c) for c in outcome.pareto) <= set(
            id(c) for c in outcome.evaluated
        )
        layers = [c.metal_layers for c in outcome.pareto]
        assert layers == sorted(layers)

    def test_pareto_non_dominated(self, outcome):
        for a in outcome.pareto:
            for b in outcome.evaluated:
                dominates = (
                    b.result.rank >= a.result.rank
                    and b.metal_layers <= a.metal_layers
                    and (
                        b.result.rank > a.result.rank
                        or b.metal_layers < a.metal_layers
                    )
                )
                assert not dominates

    def test_empty_space_rejected(self, problem, node130):
        space = DesignSpace(
            node=node130,
            local_pairs=(4,),
            semi_global_pairs=(4,),
            global_pairs=(4,),
            max_metal_layers=2,  # nothing fits the budget
        )
        with pytest.raises(RankComputationError):
            optimize_architecture(problem, space, **FAST)


class TestHillClimb:
    def test_trajectory_improves_monotonically(self, problem, space):
        trajectory = hill_climb(problem, space, **FAST)
        ranks = [c.result.rank for c in trajectory]
        assert ranks == sorted(ranks)

    def test_reaches_exhaustive_optimum_on_small_space(
        self, problem, space, outcome
    ):
        """This space's rank landscape is monotone per knob, so the
        climb must find the global best."""
        trajectory = hill_climb(problem, space, **FAST)
        assert trajectory[-1].result.rank == outcome.best.result.rank

    def test_max_steps_validated(self, problem, space):
        with pytest.raises(RankComputationError):
            hill_climb(problem, space, max_steps=0, **FAST)


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single(self, outcome):
        single = [outcome.evaluated[0]]
        assert pareto_front(single) == single
