"""Tests for architecture design spaces."""

import pytest

from repro.errors import ConfigurationError
from repro.optimize.space import DesignSpace


@pytest.fixture
def space(node130):
    return DesignSpace(
        node=node130,
        local_pairs=(1, 2),
        semi_global_pairs=(1, 2),
        global_pairs=(1,),
        permittivities=(3.9, 2.8),
        miller_factors=(2.0,),
        max_metal_layers=10,
    )


class TestEnumeration:
    def test_size(self, space):
        # 2 local x 2 semi x 1 global x 2 k x 1 M = 8; layer budget 10
        # kills local=2,semi=2 (5 pairs = 10 layers <= 10: kept) -> 8
        assert space.size() == 8

    def test_budget_prunes(self, node130):
        space = DesignSpace(
            node=node130,
            local_pairs=(1, 3),
            semi_global_pairs=(2,),
            global_pairs=(1,),
            permittivities=(3.9,),
            max_metal_layers=8,
        )
        specs = list(space)
        assert len(specs) == 1  # local=3 gives 6 pairs = 12 layers > 8
        assert specs[0].local_pairs == 1

    def test_deterministic_order(self, space):
        assert [s.permittivity for s in space][:2] == [3.9, 2.8]

    def test_candidates_valid(self, space):
        for spec in space:
            assert 2 * spec.num_pairs <= space.max_metal_layers


class TestValidation:
    def test_empty_tier_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            DesignSpace(node=node130, semi_global_pairs=())

    def test_zero_local_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            DesignSpace(node=node130, local_pairs=(0, 1))

    def test_bad_permittivity_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            DesignSpace(node=node130, permittivities=(0.5,))

    def test_bad_layer_budget_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            DesignSpace(node=node130, max_metal_layers=1)


class TestNeighbours:
    def test_moves_are_single_knob(self, space):
        start = space.default_spec()
        for neighbour in space.neighbours(start):
            diffs = sum(
                getattr(neighbour, field) != getattr(start, field)
                for field in (
                    "local_pairs",
                    "semi_global_pairs",
                    "global_pairs",
                    "permittivity",
                    "miller_factor",
                )
            )
            assert diffs == 1

    def test_neighbours_respect_budget(self, space):
        start = space.default_spec()
        for neighbour in space.neighbours(start):
            assert 2 * neighbour.num_pairs <= space.max_metal_layers

    def test_default_spec_is_smallest(self, space):
        spec = space.default_spec()
        assert spec.local_pairs == 1
        assert spec.semi_global_pairs == 1
        assert spec.global_pairs == 1
        assert spec.permittivity == 3.9  # most conservative material
