"""Tests for shielding-aware architecture search."""

import pytest

from repro.core.scenarios import baseline_problem
from repro.optimize import (
    DesignSpace,
    evaluate_candidates,
    optimize_architecture,
    shielding_capacity_factor,
)

FAST = dict(bunch_size=2000, repeater_units=128)


class TestCapacityFactor:
    def test_ladder_points(self):
        assert shielding_capacity_factor(2.0) == pytest.approx(1.0)
        assert shielding_capacity_factor(1.5) == pytest.approx(0.5)
        assert shielding_capacity_factor(1.0) == pytest.approx(1.0 / 3.0)

    def test_interpolation_monotone(self):
        values = [shielding_capacity_factor(m) for m in (1.0, 1.2, 1.5, 1.8, 2.0)]
        assert values == sorted(values)

    def test_out_of_ladder_clamped(self):
        assert shielding_capacity_factor(2.5) == pytest.approx(1.0)
        assert shielding_capacity_factor(0.5) == pytest.approx(1.0 / 3.0)


class TestShieldingAwareSearch:
    @pytest.fixture(scope="class")
    def problem(self):
        return baseline_problem("130nm", 100_000)

    @pytest.fixture(scope="class")
    def space(self, problem):
        return DesignSpace(
            node=problem.die.node,
            local_pairs=(1,),
            semi_global_pairs=(1, 2),
            global_pairs=(1,),
            permittivities=(3.9, 2.8),
            miller_factors=(2.0, 1.0),
            max_metal_layers=10,
        )

    def test_shielding_costs_capacity(self, problem, space):
        """The same M=1.0 candidate ranks lower when it must pay its
        shield tracks."""
        shielded_spec = next(
            s for s in space if s.miller_factor == 1.0 and s.permittivity == 3.9
        )
        free = evaluate_candidates(problem, [shielded_spec], **FAST)[0]
        honest = evaluate_candidates(
            problem, [shielded_spec], shielding_aware=True, **FAST
        )[0]
        assert honest.result.rank <= free.result.rank

    def test_unshielded_candidates_unaffected(self, problem, space):
        unshielded = next(
            s for s in space if s.miller_factor == 2.0 and s.permittivity == 3.9
        )
        free = evaluate_candidates(problem, [unshielded], **FAST)[0]
        honest = evaluate_candidates(
            problem, [unshielded], shielding_aware=True, **FAST
        )[0]
        assert honest.result.rank == free.result.rank

    def test_winner_can_change(self, problem, space):
        """Accounting for track cost changes (or at least re-validates)
        the optimal stack; the honest winner must itself be feasible."""
        naive = optimize_architecture(problem, space, **FAST)
        honest = optimize_architecture(
            problem, space, shielding_aware=True, **FAST
        )
        assert honest.best.result.fits
        assert honest.best.result.rank <= naive.best.result.rank
