"""Tests for synthetic WLD generators."""

import numpy as np
import pytest

from repro.errors import WLDError
from repro.wld.synthetic import (
    geometric_wld,
    single_length_wld,
    uniform_wld,
    wld_from_pairs,
)


class TestFromPairs:
    def test_round_trip(self):
        wld = wld_from_pairs([(3.0, 2), (9.0, 1)])
        assert list(wld) == [(9.0, 1), (3.0, 2)]


class TestSingleLength:
    def test_figure2_shape(self):
        """Four equal-length wires — the paper's Figure 2 instance."""
        wld = single_length_wld(500.0, 4)
        assert wld.num_groups == 1
        assert wld.total_wires == 4
        assert wld.max_length == wld.min_length == 500.0

    def test_invalid_count(self):
        with pytest.raises(WLDError):
            single_length_wld(10.0, 0)


class TestUniform:
    def test_shape(self):
        wld = uniform_wld(10.0, 100.0, num_lengths=10, count_per_length=3)
        assert wld.num_groups == 10
        assert wld.total_wires == 30
        assert wld.max_length == 100.0
        assert wld.min_length == 10.0

    def test_single_point_range(self):
        wld = uniform_wld(5.0, 5.0, num_lengths=3, count_per_length=1)
        assert wld.num_groups == 1  # identical lengths merge
        assert wld.total_wires == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_length=0.0, max_length=1.0, num_lengths=2, count_per_length=1),
            dict(min_length=2.0, max_length=1.0, num_lengths=2, count_per_length=1),
            dict(min_length=1.0, max_length=2.0, num_lengths=0, count_per_length=1),
            dict(min_length=1.0, max_length=2.0, num_lengths=2, count_per_length=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(WLDError):
            uniform_wld(**kwargs)


class TestGeometric:
    def test_shape(self):
        wld = geometric_wld(1000.0, num_lengths=5)
        assert wld.num_groups == 5
        assert wld.max_length == 1000.0

    def test_counts_grow_downward(self):
        wld = geometric_wld(1000.0, num_lengths=6, count_ratio=3.0)
        counts = list(wld.counts)
        assert counts == sorted(counts)  # rank order: long & rare first

    def test_lengths_divide(self):
        wld = geometric_wld(1024.0, num_lengths=4, length_ratio=2.0)
        assert list(wld.lengths) == [1024.0, 512.0, 256.0, 128.0]

    def test_mimics_real_wld_shape(self):
        """Most wires short, most length in the tail's head."""
        wld = geometric_wld(10_000.0, num_lengths=8, count_ratio=4.0)
        assert wld.counts[-1] > wld.counts[0] * 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_length=0.0, num_lengths=3),
            dict(max_length=10.0, num_lengths=0),
            dict(max_length=10.0, num_lengths=3, length_ratio=1.0),
            dict(max_length=10.0, num_lengths=3, count_ratio=0.5),
            dict(max_length=10.0, num_lengths=3, longest_count=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(WLDError):
            geometric_wld(**kwargs)
