"""Tests for WireLengthDistribution."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WLDError
from repro.wld.distribution import WireLengthDistribution


@pytest.fixture
def wld():
    return WireLengthDistribution.from_groups(
        [(100.0, 2), (50.0, 5), (10.0, 20), (1.0, 100)]
    )


group_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=1e4, allow_nan=False),
        st.integers(min_value=1, max_value=1000),
    ),
    min_size=1,
    max_size=30,
)


class TestConstruction:
    def test_from_groups_sorts_descending(self):
        wld = WireLengthDistribution.from_groups([(1.0, 3), (5.0, 1), (2.0, 2)])
        assert list(wld.lengths) == [5.0, 2.0, 1.0]

    def test_from_groups_merges_duplicates(self):
        wld = WireLengthDistribution.from_groups([(2.0, 3), (2.0, 4)])
        assert wld.num_groups == 1
        assert wld.total_wires == 7

    def test_from_groups_drops_zero_counts(self):
        wld = WireLengthDistribution.from_groups([(2.0, 3), (5.0, 0)])
        assert wld.num_groups == 1

    def test_from_groups_rejects_negative_counts(self):
        with pytest.raises(WLDError):
            WireLengthDistribution.from_groups([(2.0, -1)])

    def test_from_lengths(self):
        wld = WireLengthDistribution.from_lengths([3.0, 1.0, 3.0, 2.0])
        assert list(wld.lengths) == [3.0, 2.0, 1.0]
        assert list(wld.counts) == [2, 1, 1]

    def test_from_lengths_empty_rejected(self):
        with pytest.raises(WLDError):
            WireLengthDistribution.from_lengths([])

    def test_direct_rejects_increasing(self):
        with pytest.raises(WLDError):
            WireLengthDistribution(
                lengths=np.array([1.0, 2.0]), counts=np.array([1, 1])
            )

    def test_direct_rejects_non_positive_lengths(self):
        with pytest.raises(WLDError):
            WireLengthDistribution(
                lengths=np.array([2.0, 0.0]), counts=np.array([1, 1])
            )

    def test_direct_rejects_zero_counts(self):
        with pytest.raises(WLDError):
            WireLengthDistribution(
                lengths=np.array([2.0, 1.0]), counts=np.array([1, 0])
            )

    def test_direct_rejects_shape_mismatch(self):
        with pytest.raises(WLDError):
            WireLengthDistribution(lengths=np.array([2.0]), counts=np.array([1, 1]))

    def test_equal_lengths_allowed(self):
        """Bunching produces repeated lengths; they stay separate groups."""
        wld = WireLengthDistribution(
            lengths=np.array([2.0, 2.0, 1.0]), counts=np.array([4, 4, 1])
        )
        assert wld.num_groups == 3

    def test_empty(self):
        wld = WireLengthDistribution.empty()
        assert wld.total_wires == 0
        assert wld.num_groups == 0

    def test_arrays_read_only(self, wld):
        with pytest.raises(ValueError):
            wld.lengths[0] = 5.0


class TestQueries:
    def test_totals(self, wld):
        assert wld.total_wires == 127
        assert wld.total_length == pytest.approx(100 * 2 + 50 * 5 + 10 * 20 + 100)

    def test_extremes(self, wld):
        assert wld.max_length == 100.0
        assert wld.min_length == 1.0

    def test_mean(self, wld):
        assert wld.mean_length == pytest.approx(wld.total_length / 127)

    def test_iteration(self, wld):
        groups = list(wld)
        assert groups[0] == (100.0, 2)
        assert groups[-1] == (1.0, 100)

    def test_group_access(self, wld):
        assert wld.group(1) == (50.0, 5)
        with pytest.raises(WLDError):
            wld.group(4)

    def test_empty_extremes_rejected(self):
        empty = WireLengthDistribution.empty()
        with pytest.raises(WLDError):
            empty.max_length
        with pytest.raises(WLDError):
            empty.mean_length


class TestRankOrderArithmetic:
    def test_cumulative_counts(self, wld):
        assert list(wld.cumulative_counts()) == [2, 7, 27, 127]

    def test_wires_in_first_groups(self, wld):
        assert wld.wires_in_first_groups(0) == 0
        assert wld.wires_in_first_groups(2) == 7
        assert wld.wires_in_first_groups(4) == 127

    def test_length_at_rank(self, wld):
        assert wld.length_at_rank(1) == 100.0
        assert wld.length_at_rank(2) == 100.0
        assert wld.length_at_rank(3) == 50.0
        assert wld.length_at_rank(27) == 10.0
        assert wld.length_at_rank(28) == 1.0
        assert wld.length_at_rank(127) == 1.0

    def test_length_at_rank_out_of_range(self, wld):
        with pytest.raises(WLDError):
            wld.length_at_rank(0)
        with pytest.raises(WLDError):
            wld.length_at_rank(128)

    def test_prefix_suffix_partition(self, wld):
        prefix = wld.prefix(2)
        suffix = wld.suffix(2)
        assert prefix.total_wires + suffix.total_wires == wld.total_wires
        assert prefix.max_length == 100.0
        assert suffix.max_length == 10.0

    def test_scaled_lengths(self, wld):
        doubled = wld.scaled_lengths(2.0)
        assert doubled.max_length == 200.0
        assert doubled.total_wires == wld.total_wires

    def test_scaled_rejects_non_positive(self, wld):
        with pytest.raises(WLDError):
            wld.scaled_lengths(0.0)

    def test_lengths_expanded(self, wld):
        expanded = wld.lengths_expanded()
        assert expanded.size == 127
        assert expanded[0] == 100.0
        assert (np.diff(expanded) <= 0).all()

    def test_lengths_expanded_limit(self, wld):
        assert wld.lengths_expanded(limit=3).tolist() == [100.0, 100.0, 50.0]

    def test_percentile_length(self, wld):
        assert wld.percentile_length(0.0) == 100.0
        assert wld.percentile_length(1.0) == 1.0

    def test_merged_equal_lengths(self):
        wld = WireLengthDistribution(
            lengths=np.array([2.0, 2.0, 1.0]), counts=np.array([4, 4, 2])
        )
        merged = wld.merged_equal_lengths()
        assert merged.num_groups == 2
        assert merged.total_wires == 10

    def test_describe_contains_stats(self, wld):
        text = wld.describe()
        assert "127" in text


@given(group_lists)
def test_total_preserved_property(groups):
    wld = WireLengthDistribution.from_groups(groups)
    assert wld.total_wires == sum(c for _, c in groups)


@given(group_lists)
def test_rank_order_property(groups):
    wld = WireLengthDistribution.from_groups(groups)
    assert (np.diff(wld.lengths) < 0).all()  # strictly decreasing after merge


@given(group_lists, st.integers(min_value=0, max_value=30))
def test_prefix_suffix_complement_property(groups, cut):
    wld = WireLengthDistribution.from_groups(groups)
    cut = min(cut, wld.num_groups)
    prefix, suffix = wld.prefix(cut), wld.suffix(cut)
    assert prefix.total_wires + suffix.total_wires == wld.total_wires
    assert prefix.total_length + suffix.total_length == pytest.approx(
        wld.total_length
    )
