"""Tests for WLD persistence."""

import numpy as np
import pytest

from repro.errors import WLDError
from repro.wld.distribution import WireLengthDistribution
from repro.wld.io import load_wld_csv, load_wld_json, save_wld_csv, save_wld_json


@pytest.fixture
def wld():
    return WireLengthDistribution.from_groups(
        [(123.456, 7), (50.0, 100), (1.0, 9999)]
    )


class TestCSV:
    def test_round_trip(self, wld, tmp_path):
        path = tmp_path / "wld.csv"
        save_wld_csv(wld, path)
        loaded = load_wld_csv(path)
        assert (loaded.lengths == wld.lengths).all()
        assert (loaded.counts == wld.counts).all()

    def test_header_written(self, wld, tmp_path):
        path = tmp_path / "wld.csv"
        save_wld_csv(wld, path)
        assert path.read_text().splitlines()[0] == "length,count"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("len,cnt\n1.0,2\n")
        with pytest.raises(WLDError, match="header"):
            load_wld_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("length,count\n1.0,2,3\n")
        with pytest.raises(WLDError):
            load_wld_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("length,count\nabc,2\n")
        with pytest.raises(WLDError):
            load_wld_csv(path)

    def test_empty_body_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("length,count\n")
        with pytest.raises(WLDError):
            load_wld_csv(path)

    def test_float_precision_preserved(self, tmp_path):
        wld = WireLengthDistribution.from_groups([(1.0000001, 1), (1.0, 1)])
        path = tmp_path / "precise.csv"
        save_wld_csv(wld, path)
        loaded = load_wld_csv(path)
        assert loaded.num_groups == 2


class TestJSON:
    def test_round_trip(self, wld, tmp_path):
        path = tmp_path / "wld.json"
        save_wld_json(wld, path)
        loaded = load_wld_json(path)
        assert (loaded.lengths == wld.lengths).all()
        assert (loaded.counts == wld.counts).all()

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WLDError):
            load_wld_json(path)

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"lengths": [1.0]}')
        with pytest.raises(WLDError):
            load_wld_json(path)

    def test_length_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"lengths": [1.0, 2.0], "counts": [1]}')
        with pytest.raises(WLDError):
            load_wld_json(path)
