"""Tests for multi-terminal net decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WLDError
from repro.wld.nets import (
    Net,
    decompose_net,
    manhattan,
    synthetic_netlist,
    wld_from_nets,
)

coords = st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)


class TestNet:
    def test_fanout(self):
        net = Net(source=(0, 0), sinks=((1, 1), (2, 0)))
        assert net.fanout == 2

    def test_needs_sinks(self):
        with pytest.raises(WLDError):
            Net(source=(0, 0), sinks=())


class TestManhattan:
    def test_value(self):
        assert manhattan((0, 0), (3, 4)) == 7

    def test_symmetric(self):
        assert manhattan((1, 5), (4, 2)) == manhattan((4, 2), (1, 5))


class TestDecomposition:
    def test_star_lengths(self):
        net = Net(source=(0, 0), sinks=((3, 0), (0, 4)))
        assert sorted(decompose_net(net, "star")) == [3, 4]

    def test_chain_visits_nearest_first(self):
        net = Net(source=(0, 0), sinks=((10, 0), (1, 0)))
        assert decompose_net(net, "chain") == [1, 9]

    def test_chain_never_longer_than_star(self):
        net = Net(source=(0, 0), sinks=((5, 0), (6, 0), (7, 0)))
        star = sum(decompose_net(net, "star"))
        chain = sum(decompose_net(net, "chain"))
        assert chain <= star

    def test_zero_length_dropped(self):
        net = Net(source=(0, 0), sinks=((0, 0), (2, 0)))
        assert decompose_net(net, "star") == [2]

    def test_unknown_model_rejected(self):
        net = Net(source=(0, 0), sinks=((1, 0),))
        with pytest.raises(WLDError):
            decompose_net(net, "steiner")

    def test_chain_can_exceed_star(self):
        """Opposite-direction sinks: the chain backtracks, the star
        does not — chain <= star is NOT a theorem."""
        net = Net(source=(0, 0), sinks=((0, 1), (1, 0)))
        assert sum(decompose_net(net, "chain")) > sum(
            decompose_net(net, "star")
        )

    @settings(max_examples=50, deadline=None)
    @given(source=coords, sinks=st.lists(coords, min_size=1, max_size=6))
    def test_chain_hop_count_bounded_property(self, source, sinks):
        net = Net(source=source, sinks=tuple(sinks))
        chain = decompose_net(net, "chain")
        assert len(chain) <= net.fanout
        assert all(l > 0 for l in chain)

    @settings(max_examples=50, deadline=None)
    @given(source=coords, sinks=st.lists(coords, min_size=1, max_size=6))
    def test_star_wire_count_equals_fanout_property(self, source, sinks):
        net = Net(source=source, sinks=tuple(sinks))
        nonzero = [s for s in sinks if manhattan(source, s) > 0]
        assert len(decompose_net(net, "star")) == len(nonzero)


class TestWLDFromNets:
    def test_counts_and_ordering(self):
        nets = [
            Net(source=(0, 0), sinks=((5, 0), (3, 0))),
            Net(source=(0, 0), sinks=((5, 0),)),
        ]
        wld = wld_from_nets(nets)
        assert wld.total_wires == 3
        assert wld.max_length == 5

    def test_min_length_clamp(self):
        nets = [Net(source=(0, 0), sinks=((0.4, 0),))]
        wld = wld_from_nets(nets, min_length=1.0)
        assert wld.min_length == 1.0

    def test_empty_rejected(self):
        nets = [Net(source=(0, 0), sinks=((0, 0),))]
        with pytest.raises(WLDError):
            wld_from_nets(nets)

    def test_invalid_min_length(self):
        nets = [Net(source=(0, 0), sinks=((1, 0),))]
        with pytest.raises(WLDError):
            wld_from_nets(nets, min_length=0.0)


class TestSyntheticNetlist:
    def test_deterministic(self):
        a = synthetic_netlist(10_000, 100, seed=7)
        b = synthetic_netlist(10_000, 100, seed=7)
        assert a == b

    def test_size(self):
        nets = synthetic_netlist(10_000, 250)
        assert len(nets) == 250

    def test_short_nets_dominate(self):
        """Locality makes the WLD Davis-shaped: most wires short."""
        nets = synthetic_netlist(40_000, 2000, locality=0.01)
        wld = wld_from_nets(nets)
        short = sum(c for l, c in wld if l <= 6)
        assert short / wld.total_wires > 0.5

    def test_locality_controls_mean_length(self):
        tight = wld_from_nets(synthetic_netlist(40_000, 1000, locality=0.02))
        loose = wld_from_nets(synthetic_netlist(40_000, 1000, locality=0.5))
        assert tight.mean_length < loose.mean_length

    def test_validation(self):
        with pytest.raises(WLDError):
            synthetic_netlist(2, 10)
        with pytest.raises(WLDError):
            synthetic_netlist(100, 0)
        with pytest.raises(WLDError):
            synthetic_netlist(100, 10, locality=0.0)
        with pytest.raises(WLDError):
            synthetic_netlist(100, 10, mean_fanout=0.5)

    def test_end_to_end_rank(self, node130):
        """A netlist-derived WLD drives the full rank pipeline."""
        from repro import DieModel, RankProblem, compute_rank
        from repro import ArchitectureSpec, build_architecture

        nets = synthetic_netlist(40_000, 3000, locality=0.05)
        wld = wld_from_nets(nets)
        problem = RankProblem(
            arch=build_architecture(ArchitectureSpec(node=node130)),
            die=DieModel(node=node130, gate_count=40_000, repeater_fraction=0.4),
            wld=wld,
            clock_frequency=5e8,
        )
        result = compute_rank(problem, repeater_units=128)
        assert result.fits
        assert 0 < result.rank <= wld.total_wires
