"""Tests for Rent's-rule utilities."""

import pytest

from repro.errors import WLDError
from repro.wld.rent import (
    average_fanout,
    fanout_fraction,
    rent_terminals,
    total_connections,
)


class TestRentTerminals:
    def test_formula(self):
        assert rent_terminals(1000, coefficient=4.0, exponent=0.5) == pytest.approx(
            4.0 * 1000 ** 0.5
        )

    def test_single_gate(self):
        assert rent_terminals(1, coefficient=4.0, exponent=0.6) == pytest.approx(4.0)

    def test_monotone_in_gates(self):
        assert rent_terminals(10_000) > rent_terminals(1_000)

    def test_sublinear(self):
        """p < 1 means terminals grow slower than gates."""
        t1, t2 = rent_terminals(1_000), rent_terminals(10_000)
        assert t2 / t1 < 10.0

    def test_invalid_gate_count(self):
        with pytest.raises(WLDError):
            rent_terminals(0)

    def test_invalid_exponent(self):
        with pytest.raises(WLDError):
            rent_terminals(100, exponent=1.0)
        with pytest.raises(WLDError):
            rent_terminals(100, exponent=0.0)

    def test_invalid_coefficient(self):
        with pytest.raises(WLDError):
            rent_terminals(100, coefficient=0.0)


class TestFanout:
    def test_fraction_default(self):
        assert fanout_fraction() == pytest.approx(0.75)

    def test_fraction_formula(self):
        assert fanout_fraction(1.0) == pytest.approx(0.5)
        assert fanout_fraction(9.0) == pytest.approx(0.9)

    def test_invalid_fanout(self):
        with pytest.raises(WLDError):
            average_fanout(0.0)


class TestTotalConnections:
    def test_davis_total_formula(self):
        n, k, p, fo = 10_000, 4.0, 0.6, 3.0
        expected = 0.75 * 4.0 * n * (1.0 - n ** (p - 1.0))
        assert total_connections(n, k, p, fo) == pytest.approx(expected)

    def test_approaches_alpha_k_n_for_large_n(self):
        """For N -> inf the correction term vanishes: T -> alpha*k*N."""
        n = 10**9
        assert total_connections(n) == pytest.approx(0.75 * 4 * n, rel=1e-3)

    def test_positive_for_multiple_gates(self):
        assert total_connections(2) > 0

    def test_scales_superlinearly_then_linearly(self):
        """T(N)/N grows with N (fewer boundary losses on bigger chips)."""
        per_gate_small = total_connections(100) / 100
        per_gate_large = total_connections(1_000_000) / 1_000_000
        assert per_gate_large > per_gate_small
