"""Tests for the Davis stochastic WLD generator."""

import math

import numpy as np
import pytest

from repro.errors import WLDError
from repro.wld.davis import DavisParameters, davis_density, davis_wld, _largest_remainder_round
from repro.wld.rent import total_connections


@pytest.fixture(scope="module")
def wld_100k():
    return davis_wld(DavisParameters(gate_count=100_000))


class TestParameters:
    def test_max_length(self):
        params = DavisParameters(gate_count=1_000_000)
        assert params.max_length == 2 * 1000 - 2

    def test_max_length_non_square(self):
        params = DavisParameters(gate_count=1_000_001)
        assert params.max_length == 2 * 1000 - 2

    def test_expected_total_matches_rent(self):
        params = DavisParameters(gate_count=50_000)
        assert params.expected_total == pytest.approx(total_connections(50_000))

    def test_too_few_gates_rejected(self):
        with pytest.raises(WLDError):
            DavisParameters(gate_count=3)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(WLDError):
            DavisParameters(gate_count=100, rent_exponent=1.5)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(WLDError):
            DavisParameters(gate_count=100, fanout=0.0)


class TestDensity:
    def test_non_negative(self):
        density = davis_density(DavisParameters(gate_count=10_000))
        assert (density >= 0).all()

    def test_short_wires_dominate(self):
        density = davis_density(DavisParameters(gate_count=10_000))
        assert density[0] == density.max()

    def test_density_decreasing_in_region_one(self):
        density = davis_density(DavisParameters(gate_count=10_000))
        sqrt_n = int(math.sqrt(10_000))
        region1 = density[: sqrt_n - 1]
        assert (np.diff(region1) <= 0).all()

    def test_tail_vanishes(self):
        density = davis_density(DavisParameters(gate_count=10_000))
        # Relative tolerance, not a unit conversion.
        assert density[-1] < 1e-6 * density[0]  # noqa: RPL001

    def test_covers_full_length_range(self):
        params = DavisParameters(gate_count=10_000)
        assert davis_density(params).size == params.max_length


class TestLargestRemainderRound:
    def test_preserves_total(self):
        values = np.array([0.4, 0.4, 0.4, 0.4, 0.4])
        rounded = _largest_remainder_round(values, 2)
        assert rounded.sum() == 2

    def test_exact_integers_unchanged(self):
        values = np.array([3.0, 2.0, 1.0])
        assert list(_largest_remainder_round(values, 6)) == [3, 2, 1]

    def test_ties_prefer_longer_wires(self):
        """Equal fractions: the unit goes to the higher index (longer
        wire in the reversed output) so the tail is not starved."""
        values = np.array([0.5, 0.5])
        rounded = _largest_remainder_round(values, 1)
        assert list(rounded) == [0, 1]

    def test_deficit_trim(self):
        values = np.array([1.9, 1.9])
        rounded = _largest_remainder_round(values, 3)
        assert rounded.sum() == 3

    def test_negative_total_rejected(self):
        with pytest.raises(WLDError):
            _largest_remainder_round(np.array([1.0]), -1)


class TestDavisWLD:
    def test_total_matches_rent_total(self, wld_100k):
        expected = total_connections(100_000)
        assert wld_100k.total_wires == int(round(expected))

    def test_rank_order(self, wld_100k):
        assert (np.diff(wld_100k.lengths) < 0).all()

    def test_shortest_is_one_pitch(self, wld_100k):
        assert wld_100k.min_length == 1.0

    def test_max_length_within_bound(self, wld_100k):
        assert wld_100k.max_length <= 2 * math.sqrt(100_000)

    def test_short_dominance(self, wld_100k):
        """At p=0.6 roughly 70% of all wires are 1-2 pitches long."""
        counts = dict((l, c) for l, c in wld_100k)
        short = counts.get(1.0, 0) + counts.get(2.0, 0)
        assert 0.55 < short / wld_100k.total_wires < 0.80

    def test_paper_wld_total_1m_gates(self):
        """The 1M-gate WLD the paper used: its Table 4 C-column plateau
        0.309706 equals the l>=3 count share of a 2,988,057-wire Davis
        WLD — our generator reproduces that wire count exactly."""
        wld = davis_wld(DavisParameters(gate_count=1_000_000))
        assert wld.total_wires == 2_988_057

    def test_paper_plateau_fractions(self):
        """cum(l>=3)/n and cum(l>=4)/n match the paper's C plateaus to
        ~1e-4 — the strongest identity check we have on WLD + ranking."""
        wld = davis_wld(DavisParameters(gate_count=1_000_000))
        n = wld.total_wires
        counts = {length: count for length, count in wld}
        ge3 = n - counts[1.0] - counts[2.0]
        ge4 = ge3 - counts[3.0]
        assert ge3 / n == pytest.approx(0.309706, abs=2e-4)
        assert ge4 / n == pytest.approx(0.235608, abs=2e-4)

    def test_rent_exponent_shifts_mass_to_long_wires(self):
        low = davis_wld(DavisParameters(gate_count=50_000, rent_exponent=0.5))
        high = davis_wld(DavisParameters(gate_count=50_000, rent_exponent=0.7))
        assert high.mean_length > low.mean_length

    def test_larger_design_longer_wires(self):
        small = davis_wld(DavisParameters(gate_count=10_000))
        large = davis_wld(DavisParameters(gate_count=250_000))
        assert large.max_length > small.max_length
        assert large.total_wires > small.total_wires

    def test_deterministic(self):
        a = davis_wld(DavisParameters(gate_count=10_000))
        b = davis_wld(DavisParameters(gate_count=10_000))
        assert (a.lengths == b.lengths).all()
        assert (a.counts == b.counts).all()
