"""Tests for bunching and binning (paper Section 5.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WLDError
from repro.wld.coarsen import bin_wld, bunch_wld, coarsen, max_bunch_count
from repro.wld.distribution import WireLengthDistribution

group_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=1e4, allow_nan=False),
        st.integers(min_value=1, max_value=5000),
    ),
    min_size=1,
    max_size=25,
)


class TestBunching:
    def test_paper_example(self):
        """100 wires of one size at bunch 40 -> bunches of 40, 40, 20."""
        wld = WireLengthDistribution.from_groups([(7.0, 100)])
        bunched = bunch_wld(wld, 40)
        assert list(bunched.counts) == [40, 40, 20]
        assert set(bunched.lengths) == {7.0}

    def test_exact_multiple(self):
        wld = WireLengthDistribution.from_groups([(7.0, 80)])
        assert list(bunch_wld(wld, 40).counts) == [40, 40]

    def test_small_groups_untouched(self):
        wld = WireLengthDistribution.from_groups([(7.0, 10), (3.0, 5)])
        bunched = bunch_wld(wld, 40)
        assert list(bunched.counts) == [10, 5]

    def test_total_preserved(self):
        wld = WireLengthDistribution.from_groups([(9.0, 123), (2.0, 4567)])
        assert bunch_wld(wld, 100).total_wires == wld.total_wires

    def test_max_bunch_bound(self):
        wld = WireLengthDistribution.from_groups([(9.0, 123), (2.0, 4567)])
        assert max_bunch_count(bunch_wld(wld, 100)) <= 100

    def test_invalid_bunch_size(self):
        wld = WireLengthDistribution.from_groups([(1.0, 1)])
        with pytest.raises(WLDError):
            bunch_wld(wld, 0)

    def test_max_bunch_count_empty(self):
        assert max_bunch_count(WireLengthDistribution.empty()) == 0

    @given(group_lists, st.integers(min_value=1, max_value=500))
    def test_bunching_properties(self, groups, bunch_size):
        wld = WireLengthDistribution.from_groups(groups)
        bunched = bunch_wld(wld, bunch_size)
        assert bunched.total_wires == wld.total_wires
        assert bunched.total_length == pytest.approx(wld.total_length)
        assert max_bunch_count(bunched) <= bunch_size
        assert (np.diff(bunched.lengths) <= 0).all()


class TestBinning:
    def test_footnote_example(self):
        """Lengths 5996..6000 with counts 3,2,2,1,1 -> one group of 9 at
        the count-weighted mean (paper footnote 7 uses 5998)."""
        wld = WireLengthDistribution.from_groups(
            [(5996.0, 3), (5997.0, 2), (5998.0, 2), (5999.0, 1), (6000.0, 1)]
        )
        binned = bin_wld(wld, max_groups=1)
        assert binned.num_groups == 1
        assert binned.total_wires == 9
        mean = (5996 * 3 + 5997 * 2 + 5998 * 2 + 5999 + 6000) / 9
        assert binned.lengths[0] == pytest.approx(mean)

    def test_max_groups_respected(self):
        wld = WireLengthDistribution.from_groups(
            [(float(l), 1) for l in range(1, 201)]
        )
        binned = bin_wld(wld, max_groups=20)
        assert binned.num_groups <= 20

    def test_already_coarse_untouched(self):
        wld = WireLengthDistribution.from_groups([(10.0, 5), (1.0, 5)])
        assert bin_wld(wld, max_groups=10) is wld

    def test_relative_width_banding(self):
        wld = WireLengthDistribution.from_groups(
            [(100.0, 1), (99.0, 1), (50.0, 1), (49.5, 1)]
        )
        binned = bin_wld(wld, relative_width=0.05)
        assert binned.num_groups == 2

    def test_total_wirelength_preserved(self):
        wld = WireLengthDistribution.from_groups(
            [(float(l), l % 7 + 1) for l in range(1, 500)]
        )
        binned = bin_wld(wld, max_groups=30)
        assert binned.total_wires == wld.total_wires
        assert binned.total_length == pytest.approx(wld.total_length)

    def test_requires_exactly_one_knob(self):
        wld = WireLengthDistribution.from_groups([(1.0, 1)])
        with pytest.raises(WLDError):
            bin_wld(wld)
        with pytest.raises(WLDError):
            bin_wld(wld, max_groups=5, relative_width=0.1)

    def test_invalid_knob_values(self):
        wld = WireLengthDistribution.from_groups([(1.0, 1)])
        with pytest.raises(WLDError):
            bin_wld(wld, max_groups=0)
        with pytest.raises(WLDError):
            bin_wld(wld, relative_width=-0.5)

    @given(group_lists, st.integers(min_value=1, max_value=20))
    def test_binning_properties(self, groups, max_groups):
        wld = WireLengthDistribution.from_groups(groups)
        binned = bin_wld(wld, max_groups=max_groups)
        assert binned.num_groups <= max(max_groups, 1)
        assert binned.total_wires == wld.total_wires
        assert binned.total_length == pytest.approx(wld.total_length, rel=1e-9)
        # binned lengths stay inside the original range
        assert binned.max_length <= wld.max_length + 1e-9
        assert binned.min_length >= wld.min_length - 1e-9


class TestCoarsenPipeline:
    def test_bin_then_bunch(self):
        wld = WireLengthDistribution.from_groups(
            [(float(l), 97) for l in range(1, 301)]
        )
        coarse, bound = coarsen(wld, bunch_size=50, max_groups=40)
        assert coarse.total_wires == wld.total_wires
        assert bound <= 50
        assert max_bunch_count(coarse) == bound

    def test_noop(self):
        wld = WireLengthDistribution.from_groups([(2.0, 3)])
        coarse, bound = coarsen(wld)
        assert coarse is wld
        assert bound == 3
