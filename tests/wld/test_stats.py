"""Tests for WLD statistics utilities."""

import pytest

from repro.errors import WLDError
from repro.wld.davis import DavisParameters, davis_wld
from repro.wld.distribution import WireLengthDistribution
from repro.wld.stats import (
    cdf_distance,
    length_class_table,
    mean_length_ratio,
    share_at_least,
    summarize,
)
from repro.wld.synthetic import wld_from_pairs


@pytest.fixture
def wld():
    return wld_from_pairs([(10.0, 1), (4.0, 3), (2.0, 6), (1.0, 10)])


class TestShares:
    def test_share_at_least(self, wld):
        assert share_at_least(wld, 1.0) == pytest.approx(1.0)
        assert share_at_least(wld, 2.0) == pytest.approx(10 / 20)
        assert share_at_least(wld, 4.0) == pytest.approx(4 / 20)
        assert share_at_least(wld, 11.0) == 0.0

    def test_paper_plateau_share(self):
        wld = davis_wld(DavisParameters(gate_count=1_000_000))
        assert share_at_least(wld, 3.0) == pytest.approx(0.309706, abs=2e-4)

    def test_empty_rejected(self):
        with pytest.raises(WLDError):
            share_at_least(WireLengthDistribution.empty(), 1.0)


class TestLengthClassTable:
    def test_rows_structure(self, wld):
        rows = length_class_table(wld, max_rows=3)
        assert len(rows) == 3
        lengths = [row[0] for row in rows]
        assert lengths == sorted(lengths)
        # the most populous class (l=1, count 10) must be included
        assert (1.0, 10, pytest.approx(1.0)) in [
            (r[0], r[1], r[2]) for r in rows
        ]

    def test_cumulative_share_column(self, wld):
        rows = dict((row[0], row[2]) for row in length_class_table(wld))
        assert rows[2.0] == pytest.approx(0.5)  # wires >= 2

    def test_invalid_rows(self, wld):
        with pytest.raises(WLDError):
            length_class_table(wld, max_rows=0)


class TestComparisons:
    def test_mean_ratio(self, wld):
        doubled = wld.scaled_lengths(2.0)
        assert mean_length_ratio(doubled, wld) == pytest.approx(2.0)

    def test_cdf_distance_zero_for_identical(self, wld):
        assert cdf_distance(wld, wld) == pytest.approx(0.0)

    def test_cdf_distance_scale_invariance_of_counts(self, wld):
        """Duplicating every count leaves the shape unchanged."""
        doubled = wld_from_pairs((l, 2 * c) for l, c in wld)
        assert cdf_distance(wld, doubled) == pytest.approx(0.0)

    def test_cdf_distance_detects_shift(self, wld):
        shifted = wld.scaled_lengths(3.0)
        assert cdf_distance(wld, shifted) > 0.4

    def test_cdf_distance_bounded(self, wld):
        far = wld_from_pairs([(1000.0, 5)])
        assert 0.0 < cdf_distance(wld, far) <= 1.0

    def test_empty_rejected(self, wld):
        with pytest.raises(WLDError):
            cdf_distance(wld, WireLengthDistribution.empty())


class TestSummary:
    def test_fields(self, wld):
        digest = summarize(wld)
        assert digest.total_wires == 20
        assert digest.max_length == 10.0
        assert digest.share_ge2 == pytest.approx(0.5)
        assert digest.share_ge4 == pytest.approx(0.2)

    def test_davis_digest_matches_paper_anchors(self):
        digest = summarize(davis_wld(DavisParameters(gate_count=1_000_000)))
        assert digest.total_wires == 2_988_057
        assert digest.share_ge3 == pytest.approx(0.309725, abs=1e-6)
        assert digest.share_ge4 == pytest.approx(0.235629, abs=1e-4)
