"""Tests for repeater sizing and insertion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay.ottenbrayton import wire_delay
from repro.delay.repeater import (
    min_stages_for_target,
    min_stages_for_target_batch,
    optimal_repeater_size,
    solve_repeaters,
)
from repro.errors import DelayModelError
from repro.rc.models import WireRC
from repro.tech.device import DeviceParameters


@pytest.fixture
def rc():
    return WireRC(resistance=3.2e5, capacitance=3.0e-10)


@pytest.fixture
def device():
    return DeviceParameters(
        output_resistance=2500.0,
        input_capacitance=0.6e-15,
        parasitic_capacitance=0.4e-15,
        min_inverter_area=2.5e-14,
    )


class TestOptimalSize:
    def test_eq4(self, rc, device):
        expected = math.sqrt(
            rc.capacitance
            * device.output_resistance
            / (device.input_capacitance * rc.resistance)
        )
        assert optimal_repeater_size(rc, device) == pytest.approx(expected)

    def test_clamped_at_one(self, device):
        """Extreme RC cannot drive size below the minimum inverter."""
        rc = WireRC(resistance=1e12, capacitance=1e-18)
        assert optimal_repeater_size(rc, device) == 1.0

    def test_size_minimizes_linear_coefficient(self, rc, device):
        """Perturbing s away from s_opt increases the l-linear term."""
        s_opt = optimal_repeater_size(rc, device)

        def linear(s):
            return (
                rc.capacitance * device.output_resistance / s
                + rc.resistance * device.input_capacitance * s
            )

        assert linear(s_opt) <= linear(s_opt * 1.2)
        assert linear(s_opt) <= linear(s_opt / 1.2)


class TestMinStages:
    def test_minimality_and_feasibility(self, rc, device):
        length, size = 3e-3, 30.0
        target = 1.3 * wire_delay(rc, device, size, 3, length)
        stages = min_stages_for_target(rc, device, length, target, size=size)
        assert stages is not None
        assert wire_delay(rc, device, size, stages, length) <= target
        if stages > 1:
            assert wire_delay(rc, device, size, stages - 1, length) > target

    def test_matches_incremental_scan(self, rc, device):
        """Closed form equals the paper's incremental insertion result."""
        length, size = 2.5e-3, 25.0
        for target_scale in (0.9, 1.0, 1.5, 3.0, 10.0):
            best = wire_delay(
                rc,
                device,
                size,
                max(1, round(min_stages := 1)),
                length,
            )
            target = target_scale * wire_delay(rc, device, size, 2, length)
            closed = min_stages_for_target(rc, device, length, target, size=size)
            # incremental scan
            incremental = None
            prev = math.inf
            for eta in range(1, 200):
                delay = wire_delay(rc, device, size, eta, length)
                if delay <= target:
                    incremental = eta
                    break
                if delay >= prev:
                    break
                prev = delay
            assert closed == incremental

    def test_infeasible_returns_none(self, rc, device):
        assert min_stages_for_target(rc, device, 3e-3, 1e-15) is None

    def test_zero_target_returns_none(self, rc, device):
        assert min_stages_for_target(rc, device, 1e-3, 0.0) is None

    def test_max_stages_cap(self, rc, device):
        length = 5e-3
        target = wire_delay(rc, device, 30.0, 10, length)
        unlimited = min_stages_for_target(rc, device, length, target, size=30.0)
        assert unlimited is not None and unlimited > 2
        capped = min_stages_for_target(
            rc, device, length, target, size=30.0, max_stages=2
        )
        assert capped is None

    def test_loose_target_needs_one_stage(self, rc, device):
        assert min_stages_for_target(rc, device, 1e-4, 1.0) == 1

    def test_negative_length_rejected(self, rc, device):
        with pytest.raises(DelayModelError):
            min_stages_for_target(rc, device, -1.0, 1e-9)


class TestMinStagesBatch:
    def test_matches_scalar(self, rc, device):
        lengths = np.array([1e-4, 5e-4, 1e-3, 3e-3, 8e-3])
        targets = np.array([5e-11, 1e-10, 2e-10, 3e-10, 1e-12])
        batch = min_stages_for_target_batch(rc, device, lengths, targets)
        for i in range(lengths.size):
            scalar = min_stages_for_target(
                rc, device, float(lengths[i]), float(targets[i])
            )
            expected = -1 if scalar is None else scalar
            assert batch[i] == expected

    def test_shape_mismatch_rejected(self, rc, device):
        with pytest.raises(DelayModelError):
            min_stages_for_target_batch(
                rc, device, np.array([1e-3]), np.array([1e-9, 2e-9])
            )

    def test_respects_max_stages(self, rc, device):
        lengths = np.array([8e-3])
        target = np.array([wire_delay(rc, device, 30.0, 12, 8e-3)])
        s_opt = optimal_repeater_size(rc, device)
        unlimited = min_stages_for_target_batch(rc, device, lengths, target)
        if unlimited[0] > 3:
            capped = min_stages_for_target_batch(
                rc, device, lengths, target, max_stages=3
            )
            assert capped[0] == -1

    @settings(deadline=None)
    @given(
        length=st.floats(min_value=1e-6, max_value=1e-2),
        target=st.floats(min_value=1e-13, max_value=1e-8),
    )
    def test_batch_scalar_agreement_property(self, length, target):
        rc = WireRC(resistance=2e5, capacitance=2.5e-10)
        device = DeviceParameters(
            output_resistance=2290.0,
            input_capacitance=0.6e-15,
            parasitic_capacitance=0.4e-15,
            min_inverter_area=2.5e-14,
        )
        batch = min_stages_for_target_batch(
            rc, device, np.array([length]), np.array([target])
        )
        scalar = min_stages_for_target(rc, device, length, target)
        assert batch[0] == (-1 if scalar is None else scalar)


class TestSolveRepeaters:
    def test_solution_fields(self, rc, device):
        length = 3e-3
        target = 2 * wire_delay(rc, device, optimal_repeater_size(rc, device), 3, length)
        solution = solve_repeaters(rc, device, length, target)
        assert solution is not None
        assert solution.inserted == solution.stages - 1
        assert solution.delay <= target
        assert solution.area == pytest.approx(
            solution.inserted * device.repeater_area(solution.size)
        )

    def test_defaults_to_optimal_size(self, rc, device):
        length = 3e-3
        target = 1e-9
        solution = solve_repeaters(rc, device, length, target)
        assert solution.size == pytest.approx(optimal_repeater_size(rc, device))

    def test_infeasible_returns_none(self, rc, device):
        assert solve_repeaters(rc, device, 5e-3, 1e-15) is None

    def test_no_repeaters_no_area(self, rc, device):
        solution = solve_repeaters(rc, device, 1e-5, 1.0)
        assert solution.stages == 1
        assert solution.area == 0.0
