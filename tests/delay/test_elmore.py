"""Tests for the Elmore cross-validation model."""

import pytest

from repro.delay.elmore import elmore_segment_delay, elmore_wire_delay
from repro.delay.ottenbrayton import wire_delay
from repro.errors import DelayModelError
from repro.rc.models import WireRC
from repro.tech.device import DeviceParameters


@pytest.fixture
def rc():
    return WireRC(resistance=3.2e5, capacitance=3.0e-10)


@pytest.fixture
def device():
    return DeviceParameters(
        output_resistance=2500.0,
        input_capacitance=0.6e-15,
        parasitic_capacitance=0.4e-15,
        min_inverter_area=2.5e-14,
    )


class TestElmore:
    def test_positive(self, rc, device):
        assert elmore_segment_delay(rc, device, 10.0, 1e-3) > 0

    def test_wire_is_stages_times_segment(self, rc, device):
        total = elmore_wire_delay(rc, device, 10.0, 4, 2e-3)
        assert total == pytest.approx(
            4 * elmore_segment_delay(rc, device, 10.0, 5e-4)
        )

    def test_invalid_inputs(self, rc, device):
        with pytest.raises(DelayModelError):
            elmore_segment_delay(rc, device, 0.0, 1e-3)
        with pytest.raises(DelayModelError):
            elmore_segment_delay(rc, device, 1.0, -1.0)
        with pytest.raises(DelayModelError):
            elmore_wire_delay(rc, device, 1.0, 0, 1e-3)


class TestCrossValidation:
    """The two independent delay models must agree on trends."""

    def test_same_order_of_magnitude(self, rc, device):
        for length in (1e-4, 1e-3, 5e-3):
            ob = wire_delay(rc, device, 20.0, 3, length)
            el = elmore_wire_delay(rc, device, 20.0, 3, length)
            assert 0.3 < ob / el < 3.0

    def test_both_benefit_from_repeaters_on_long_wires(self, rc, device):
        length = 8e-3
        assert elmore_wire_delay(rc, device, 30.0, 6, length) < elmore_wire_delay(
            rc, device, 30.0, 1, length
        )
        assert wire_delay(rc, device, 30.0, 6, length) < wire_delay(
            rc, device, 30.0, 1, length
        )

    def test_both_monotone_in_length(self, rc, device):
        for model in (wire_delay, elmore_wire_delay):
            assert model(rc, device, 10.0, 2, 2e-3) > model(rc, device, 10.0, 2, 1e-3)

    def test_both_monotone_in_capacitance(self, device, rc):
        high_c = rc.scaled(c_factor=2.0)
        for model in (wire_delay, elmore_wire_delay):
            assert model(high_c, device, 10.0, 2, 1e-3) > model(
                rc, device, 10.0, 2, 1e-3
            )
