"""Batch delay kernels agree element-for-element with the scalar models.

The vectorized table build (and through it the numpy DP backend) is
only trustworthy if every batched formula reproduces its scalar
counterpart exactly — same IEEE operations in the same order, so the
comparison is ``==``, not ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import get_node
from repro.delay.elmore import elmore_wire_delay, elmore_wire_delay_batch
from repro.delay.ottenbrayton import wire_delay, wire_delay_batch
from repro.delay.repeater import (
    optimal_repeater_size,
    optimal_repeater_size_batch,
)
from repro.errors import DelayModelError
from repro.rc.models import WireRC, stack_rc_arrays


@pytest.fixture(scope="module")
def device():
    return get_node("130nm").device


RC = WireRC(resistance=5.0e4, capacitance=2.0e-10)


class TestWireDelayBatch:
    @settings(max_examples=25, deadline=None)
    @given(
        stages=st.lists(
            st.integers(min_value=1, max_value=40), min_size=1, max_size=8
        ),
        length=st.floats(min_value=1e-6, max_value=2e-2),
    )
    def test_matches_scalar(self, device, stages, length):
        lengths = [length * (i + 1) for i in range(len(stages))]
        batch = wire_delay_batch(RC, device, 4.0, stages, lengths)
        for i, (eta, l) in enumerate(zip(stages, lengths)):
            assert batch[i] == wire_delay(RC, device, 4.0, eta, l)

    def test_rejects_bad_inputs(self, device):
        with pytest.raises(DelayModelError):
            wire_delay_batch(RC, device, 0.0, [1], [1e-3])
        with pytest.raises(DelayModelError):
            wire_delay_batch(RC, device, 4.0, [0], [1e-3])
        with pytest.raises(DelayModelError):
            wire_delay_batch(RC, device, 4.0, [1], [-1e-3])


class TestElmoreBatch:
    def test_matches_scalar(self, device):
        stages = [1, 2, 3, 7, 20]
        lengths = [1e-4, 5e-4, 1e-3, 4e-3, 1e-2]
        batch = elmore_wire_delay_batch(RC, device, 3.0, stages, lengths)
        for i, (eta, l) in enumerate(zip(stages, lengths)):
            assert batch[i] == elmore_wire_delay(RC, device, 3.0, eta, l)


class TestRepeaterSizeBatch:
    def test_matches_scalar_across_architecture(self, device):
        rcs = [
            WireRC(resistance=r, capacitance=c)
            for r, c in [(2e4, 1e-10), (8e4, 3e-10), (4e5, 2e-10)]
        ]
        batch = optimal_repeater_size_batch(stack_rc_arrays(rcs), device)
        for i, rc in enumerate(rcs):
            assert batch[i] == optimal_repeater_size(rc, device)

    def test_clamps_to_minimum_inverter(self, device):
        # Absurdly resistive wire: optimum below 1 must clamp to 1.
        rc = WireRC(resistance=1e12, capacitance=1e-18)
        assert optimal_repeater_size(rc, device) == 1.0
        arrays = stack_rc_arrays([rc])
        assert optimal_repeater_size_batch(arrays, device)[0] == 1.0


class TestStackRCArrays:
    def test_rc_product_matches_scalar_multiplication(self):
        rcs = [WireRC(resistance=3.0e4, capacitance=7.0e-10)]
        arrays = stack_rc_arrays(rcs)
        assert len(arrays) == 1
        assert arrays.rc_product[0] == rcs[0].rc_product
        assert arrays.rc_product.dtype == np.float64
