"""Tests for the Otten--Brayton delay model (paper Eqs. (2)-(3))."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.delay.ottenbrayton import (
    min_delay_stage_count,
    segment_delay,
    unbuffered_delay,
    wire_delay,
)
from repro.errors import DelayModelError
from repro.rc.models import WireRC
from repro.tech.device import DeviceParameters


@pytest.fixture
def rc():
    return WireRC(resistance=3.2e5, capacitance=3.0e-10)


@pytest.fixture
def device():
    return DeviceParameters(
        output_resistance=2500.0,
        input_capacitance=0.6e-15,
        parasitic_capacitance=0.4e-15,
        min_inverter_area=2.5e-14,
    )


class TestSegmentDelay:
    def test_zero_length_leaves_intrinsic(self, rc, device):
        delay = segment_delay(rc, device, size=10.0, segment_length=0.0)
        assert delay == pytest.approx(0.7 * device.intrinsic_delay)

    def test_eq2_terms(self, rc, device):
        """Hand-evaluate Eq. (2) for one configuration."""
        size, length = 20.0, 1e-3
        r_tr = device.output_resistance / size
        c_load = size * device.input_capacitance
        c_par = size * device.parasitic_capacitance
        expected = (
            0.7 * r_tr * (c_load + c_par)
            + 0.7 * (rc.capacitance * r_tr + rc.resistance * c_load) * length
            + 0.4 * rc.rc_product * length ** 2
        )
        assert segment_delay(rc, device, size, length) == pytest.approx(expected)

    def test_quadratic_in_length(self, rc, device):
        """For long segments the l^2 term dominates."""
        d1 = segment_delay(rc, device, 10.0, 1e-3)
        d2 = segment_delay(rc, device, 10.0, 2e-3)
        assert d2 > 2 * d1

    def test_invalid_inputs(self, rc, device):
        with pytest.raises(DelayModelError):
            segment_delay(rc, device, 0.0, 1e-3)
        with pytest.raises(DelayModelError):
            segment_delay(rc, device, 1.0, -1e-3)


class TestWireDelay:
    def test_matches_eq3_decomposition(self, rc, device):
        """Eq. (3): intrinsic*eta + linear(l) + quadratic(l)/eta."""
        size, length, stages = 30.0, 2e-3, 4
        intrinsic = 0.7 * device.intrinsic_delay * stages
        linear = (
            0.7
            * (
                rc.capacitance * device.output_resistance / size
                + rc.resistance * device.input_capacitance * size
            )
            * length
        )
        quadratic = 0.4 * rc.rc_product * length ** 2 / stages
        assert wire_delay(rc, device, size, stages, length) == pytest.approx(
            intrinsic + linear + quadratic
        )

    def test_one_stage_equals_unbuffered(self, rc, device):
        assert wire_delay(rc, device, 5.0, 1, 1e-3) == pytest.approx(
            unbuffered_delay(rc, device, 5.0, 1e-3)
        )

    def test_equals_stages_times_segment_delay(self, rc, device):
        """Eq. (3) is exactly eta equal segments of Eq. (2)."""
        size, length, stages = 12.0, 3e-3, 5
        total = wire_delay(rc, device, size, stages, length)
        per_segment = segment_delay(rc, device, size, length / stages)
        assert total == pytest.approx(stages * per_segment)

    def test_repeaters_help_long_wires(self, rc, device):
        length = 5e-3
        assert wire_delay(rc, device, 30.0, 5, length) < wire_delay(
            rc, device, 30.0, 1, length
        )

    def test_repeaters_hurt_short_wires(self, rc, device):
        length = 1e-6
        assert wire_delay(rc, device, 30.0, 5, length) > wire_delay(
            rc, device, 30.0, 1, length
        )

    def test_convex_in_stages(self, rc, device):
        """Delay decreases then increases around the optimum."""
        length = 5e-3
        delays = [wire_delay(rc, device, 30.0, s, length) for s in range(1, 40)]
        best = delays.index(min(delays))
        assert all(delays[i] >= delays[i + 1] - 1e-18 for i in range(best))
        assert all(delays[i] <= delays[i + 1] + 1e-18 for i in range(best, 38))

    def test_invalid_stage_count(self, rc, device):
        with pytest.raises(DelayModelError):
            wire_delay(rc, device, 1.0, 0, 1e-3)


class TestMinDelayStageCount:
    def test_closed_form(self, rc, device):
        length = 4e-3
        expected = length * math.sqrt(
            0.4 * rc.rc_product / (0.7 * device.intrinsic_delay)
        )
        assert min_delay_stage_count(rc, device, length) == pytest.approx(expected)

    def test_zero_for_zero_length(self, rc, device):
        assert min_delay_stage_count(rc, device, 0.0) == 0.0

    def test_negative_length_rejected(self, rc, device):
        with pytest.raises(DelayModelError):
            min_delay_stage_count(rc, device, -1.0)

    def test_integer_neighbourhood_is_optimal(self, rc, device):
        """The integer optimum is floor or ceil of the real optimum."""
        length = 6e-3
        eta_star = min_delay_stage_count(rc, device, length)
        candidates = {max(1, math.floor(eta_star)), max(1, math.ceil(eta_star))}
        best_delay = min(
            wire_delay(rc, device, 10.0, s, length) for s in range(1, 60)
        )
        assert any(
            wire_delay(rc, device, 10.0, s, length) == pytest.approx(best_delay)
            for s in candidates
        )


@given(
    length=st.floats(min_value=1e-6, max_value=1e-2),
    stages=st.integers(min_value=1, max_value=50),
    size=st.floats(min_value=1.0, max_value=500.0),
)
def test_delay_positive_property(length, stages, size):
    rc = WireRC(resistance=1e5, capacitance=2e-10)
    device = DeviceParameters(
        output_resistance=3000.0,
        input_capacitance=1e-15,
        parasitic_capacitance=1e-15,
        min_inverter_area=4e-14,
    )
    assert wire_delay(rc, device, size, stages, length) > 0


@given(length=st.floats(min_value=1e-5, max_value=1e-2))
def test_delay_monotone_in_length_property(length):
    rc = WireRC(resistance=1e5, capacitance=2e-10)
    device = DeviceParameters(
        output_resistance=3000.0,
        input_capacitance=1e-15,
        parasitic_capacitance=1e-15,
        min_inverter_area=4e-14,
    )
    assert wire_delay(rc, device, 10.0, 3, 2 * length) > wire_delay(
        rc, device, 10.0, 3, length
    )
