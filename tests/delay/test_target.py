"""Tests for target-delay models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.delay.target import LinearTargetModel, QuadraticTargetModel
from repro.errors import DelayModelError


class TestLinear:
    def test_paper_formula(self):
        """d_i = (l_i / l_max) / f_c."""
        model = LinearTargetModel(max_length=2.4e-3, clock_frequency=5e8)
        assert model.target(2.4e-3) == pytest.approx(2e-9)
        assert model.target(1.2e-3) == pytest.approx(1e-9)

    def test_longest_wire_gets_full_period(self):
        model = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        assert model.target(1e-3) == pytest.approx(1e-9)

    def test_zero_length_zero_target(self):
        model = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        assert model.target(0.0) == 0.0

    def test_vectorized_matches_scalar(self):
        model = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        lengths = np.array([1e-4, 5e-4, 1e-3])
        assert model.targets(lengths) == pytest.approx(
            [model.target(float(l)) for l in lengths]
        )

    def test_frequency_tightens_targets(self):
        slow = LinearTargetModel(max_length=1e-3, clock_frequency=5e8)
        fast = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        assert fast.target(5e-4) == pytest.approx(slow.target(5e-4) / 2)

    def test_invalid_construction(self):
        with pytest.raises(DelayModelError):
            LinearTargetModel(max_length=0.0, clock_frequency=1e9)
        with pytest.raises(DelayModelError):
            LinearTargetModel(max_length=1e-3, clock_frequency=0.0)

    def test_negative_length_rejected(self):
        model = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        with pytest.raises(DelayModelError):
            model.target(-1.0)
        with pytest.raises(DelayModelError):
            model.targets(np.array([-1.0]))


class TestQuadratic:
    def test_section6_formula(self):
        """d_i = (l_i / l_max)^2 / f_c."""
        model = QuadraticTargetModel(max_length=2e-3, clock_frequency=5e8)
        assert model.target(2e-3) == pytest.approx(2e-9)
        assert model.target(1e-3) == pytest.approx(0.5e-9)

    def test_looser_than_linear_for_short_wires(self):
        linear = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        quad = QuadraticTargetModel(max_length=1e-3, clock_frequency=1e9)
        assert quad.target(1e-4) < linear.target(1e-4)

    def test_equal_at_max_length(self):
        linear = LinearTargetModel(max_length=1e-3, clock_frequency=1e9)
        quad = QuadraticTargetModel(max_length=1e-3, clock_frequency=1e9)
        assert quad.target(1e-3) == pytest.approx(linear.target(1e-3))

    def test_vectorized_matches_scalar(self):
        model = QuadraticTargetModel(max_length=1e-3, clock_frequency=1e9)
        lengths = np.array([1e-4, 5e-4, 1e-3])
        assert model.targets(lengths) == pytest.approx(
            [model.target(float(l)) for l in lengths]
        )

    def test_negative_length_rejected(self):
        model = QuadraticTargetModel(max_length=1e-3, clock_frequency=1e9)
        with pytest.raises(DelayModelError):
            model.targets(np.array([1.0, -1.0]))


@given(
    length=st.floats(min_value=0.0, max_value=1e-3),
    frequency=st.floats(min_value=1e8, max_value=1e10),
)
def test_targets_bounded_by_clock_period_property(length, frequency):
    for cls in (LinearTargetModel, QuadraticTargetModel):
        model = cls(max_length=1e-3, clock_frequency=frequency)
        assert 0.0 <= model.target(length) <= 1.0 / frequency + 1e-18
