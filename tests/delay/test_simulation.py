"""Golden-model tests: the closed forms vs numerical RC simulation.

The Otten--Brayton Eq. (3) closed form (what the rank metric runs on)
must track a discretized distributed-RC ladder integrated exactly —
an implementation-independent physics check.
"""

import pytest

from repro.delay.elmore import elmore_wire_delay
from repro.delay.ottenbrayton import wire_delay
from repro.delay.repeater import min_stages_for_target, optimal_repeater_size
from repro.delay.simulation import simulate_segment_delay, simulate_wire_delay
from repro.errors import DelayModelError
from repro.rc.models import WireRC
from repro.tech.device import DeviceParameters


@pytest.fixture(scope="module")
def rc():
    return WireRC(resistance=3.2e5, capacitance=3.0e-10)


@pytest.fixture(scope="module")
def device():
    return DeviceParameters(
        output_resistance=2290.0,
        input_capacitance=0.6e-15,
        parasitic_capacitance=0.4e-15,
        min_inverter_area=2.5e-14,
    )


class TestAgainstClosedForms:
    @pytest.mark.parametrize("length", [1e-4, 5e-4, 2e-3])
    @pytest.mark.parametrize("stages", [1, 3])
    def test_otten_brayton_within_five_percent(self, rc, device, length, stages):
        simulated = simulate_wire_delay(rc, device, 50.0, stages, length)
        closed = wire_delay(rc, device, 50.0, stages, length)
        assert closed == pytest.approx(simulated, rel=0.05)

    @pytest.mark.parametrize("length", [1e-4, 1e-3])
    def test_elmore_within_ten_percent(self, rc, device, length):
        simulated = simulate_wire_delay(rc, device, 30.0, 2, length)
        elmore = elmore_wire_delay(rc, device, 30.0, 2, length)
        assert elmore == pytest.approx(simulated, rel=0.10)

    def test_simulated_repeater_benefit(self, rc, device):
        """Repeaters help long wires in the golden model too."""
        length = 4e-3
        assert simulate_wire_delay(rc, device, 50.0, 4, length) < (
            simulate_wire_delay(rc, device, 50.0, 1, length)
        )

    def test_simulated_optimal_size_beats_perturbed(self, rc, device):
        """Eq. (4) sizing is near-optimal in the golden model: the
        simulated delay at s_opt beats strongly mis-sized stages."""
        length = 1e-3
        s_opt = optimal_repeater_size(rc, device)
        best = simulate_wire_delay(rc, device, s_opt, 2, length)
        assert best < simulate_wire_delay(rc, device, s_opt / 4, 2, length)
        assert best < simulate_wire_delay(rc, device, s_opt * 4, 2, length)

    def test_min_stages_verdict_confirmed_by_simulation(self, rc, device):
        """If the closed form says eta stages meet a target, the golden
        model agrees to within its 5% band."""
        length = 2e-3
        size = optimal_repeater_size(rc, device)
        target = 1.15 * wire_delay(rc, device, size, 3, length)
        stages = min_stages_for_target(rc, device, length, target, size=size)
        assert stages is not None
        simulated = simulate_wire_delay(rc, device, size, stages, length)
        assert simulated <= target * 1.05


class TestConvergence:
    def test_section_refinement_converges(self, rc, device):
        coarse = simulate_segment_delay(rc, device, 40.0, 1e-3, sections=20)
        fine = simulate_segment_delay(rc, device, 40.0, 1e-3, sections=120)
        assert coarse == pytest.approx(fine, rel=0.02)

    def test_invalid_inputs(self, rc, device):
        with pytest.raises(DelayModelError):
            simulate_segment_delay(rc, device, 0.0, 1e-3)
        with pytest.raises(DelayModelError):
            simulate_segment_delay(rc, device, 1.0, -1e-3)
        with pytest.raises(DelayModelError):
            simulate_segment_delay(rc, device, 1.0, 1e-3, sections=1)
        with pytest.raises(DelayModelError):
            simulate_wire_delay(rc, device, 1.0, 0, 1e-3)
