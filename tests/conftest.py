"""Shared fixtures for the test suite.

Fixtures are deliberately small: solver cross-validation runs at a few
wires, and integration tests use designs of 50k-200k gates so the whole
suite stays fast while still exercising the full pipeline.
"""

from __future__ import annotations

import os

import pytest

try:
    from hypothesis import settings as _hyp_settings

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:
    # Two profiles: "dev" keeps property tests fast and randomized for
    # local exploration; "ci" (loaded when CI=1) is derandomized — the
    # example sequence is derived from each test's code, so CI runs are
    # reproducible — and digs deeper with more examples.  print_blob
    # makes any failure print its @reproduce_failure blob, the exact
    # recipe to replay the failing example locally.
    _hyp_settings.register_profile(
        "dev", max_examples=25, deadline=None, print_blob=True
    )
    _hyp_settings.register_profile(
        "ci",
        max_examples=200,
        deadline=None,
        derandomize=True,
        print_blob=True,
    )
    _hyp_settings.load_profile("ci" if os.environ.get("CI") else "dev")

from repro import (
    ArchitectureSpec,
    DieModel,
    RankProblem,
    build_architecture,
    get_node,
)
from repro.core.scenarios import baseline_problem
from repro.wld.synthetic import wld_from_pairs


@pytest.fixture(scope="session")
def node130():
    """The 130 nm preset node (the paper's baseline)."""
    return get_node("130nm")


@pytest.fixture(scope="session")
def node180():
    return get_node("180nm")


@pytest.fixture(scope="session")
def node90():
    return get_node("90nm")


@pytest.fixture(scope="session")
def arch130(node130):
    """Baseline 130 nm architecture: 1 global + 2 semi-global + 1 local."""
    return build_architecture(ArchitectureSpec(node=node130))


@pytest.fixture(scope="session")
def die130(node130):
    """1M-gate die at the baseline 0.4 repeater fraction."""
    return DieModel(node=node130, gate_count=1_000_000, repeater_fraction=0.4)


def make_tiny_problem(
    node,
    lengths,
    gate_count=10_000,
    repeater_fraction=0.2,
    clock_frequency=5.0e8,
    local_pairs=1,
    semi_global_pairs=0,
    global_pairs=1,
    **kwargs,
):
    """A small unit-count problem for solver cross-validation."""
    arch = build_architecture(
        ArchitectureSpec(
            node=node,
            local_pairs=local_pairs,
            semi_global_pairs=semi_global_pairs,
            global_pairs=global_pairs,
        )
    )
    die = DieModel(
        node=node, gate_count=gate_count, repeater_fraction=repeater_fraction
    )
    wld = wld_from_pairs((float(l), 1) for l in lengths)
    return RankProblem(
        arch=arch, die=die, wld=wld, clock_frequency=clock_frequency, **kwargs
    )


@pytest.fixture
def tiny_problem(node130):
    """Five distinct wires, two layer-pairs: exhaustive-checkable."""
    return make_tiny_problem(node130, [1200, 700, 300, 90, 25])


@pytest.fixture(scope="session")
def small_baseline():
    """A 100k-gate 130 nm baseline — full pipeline, fast to solve."""
    return baseline_problem("130nm", 100_000)
