"""The fault_point guard, arming lifecycle, and fault actions."""

import pickle

import pytest

from repro import obs
from repro.errors import FaultInjectionError, InjectedFault
from repro.faultkit import (
    FaultSchedule,
    FaultSpec,
    activated,
    active_schedule,
    fault_point,
    install,
    uninstall,
)


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with injection off."""
    uninstall()
    yield
    uninstall()


@pytest.fixture
def metrics():
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


def raise_schedule(**kwargs):
    return FaultSchedule(
        specs=(FaultSpec(site="site.a", kind="raise", **kwargs),)
    )


class TestGuard:
    def test_disabled_is_a_noop(self):
        assert active_schedule() is None
        fault_point("site.a", point="p")  # must not raise

    def test_install_uninstall(self):
        schedule = raise_schedule()
        install(schedule)
        assert active_schedule() == schedule
        uninstall()
        assert active_schedule() is None
        fault_point("site.a")

    def test_activated_restores_previous_state(self):
        outer = raise_schedule(point="only-outer")
        install(outer)
        inner = raise_schedule()
        with pytest.raises(InjectedFault):
            with activated(inner):
                assert active_schedule() == inner
                fault_point("site.a")
        assert active_schedule() == outer

    def test_activated_with_falsy_schedule_changes_nothing(self):
        with activated(None):
            assert active_schedule() is None
        installed = raise_schedule()
        install(installed)
        with activated(FaultSchedule()):
            assert active_schedule() == installed


class TestMatching:
    def test_site_mismatch_does_not_fire(self):
        install(raise_schedule())
        fault_point("site.b")

    def test_point_matcher(self):
        install(raise_schedule(point="p[1]"))
        fault_point("site.a", point="p[0]")
        with pytest.raises(InjectedFault):
            fault_point("site.a", point="p[1]")

    def test_occurrence_counts_per_site(self):
        install(
            FaultSchedule(
                specs=(FaultSpec(site="site.a", kind="raise", occurrence=2),)
            )
        )
        fault_point("site.a")
        fault_point("site.b")  # independent counter
        fault_point("site.a")
        with pytest.raises(InjectedFault):
            fault_point("site.a")

    def test_times_bounds_total_fires(self):
        install(
            FaultSchedule(
                specs=(FaultSpec(site="site.a", kind="raise", times=2),)
            )
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fault_point("site.a")
        fault_point("site.a")  # exhausted; never fires again

    def test_glob_spec_matches_multiple_sites(self):
        install(
            FaultSchedule(
                specs=(FaultSpec(site="site.*", kind="raise", times=2),)
            )
        )
        with pytest.raises(InjectedFault):
            fault_point("site.a")
        with pytest.raises(InjectedFault):
            fault_point("site.b")


class TestActions:
    def test_raise_carries_site_and_point(self):
        install(raise_schedule())
        with pytest.raises(InjectedFault, match=r"site\.a.*p\[3\]"):
            fault_point("site.a", point="p[3]", attempt=0)

    def test_pickle_kind_raises_pickling_error(self):
        install(
            FaultSchedule(specs=(FaultSpec(site="site.a", kind="pickle"),))
        )
        with pytest.raises(pickle.PicklingError, match="injected"):
            fault_point("site.a")

    def test_torn_truncates_file(self, tmp_path):
        path = tmp_path / "payload.json"
        path.write_bytes(b"x" * 100)
        install(FaultSchedule(specs=(FaultSpec(site="site.a", kind="torn"),)))
        fault_point("site.a", path=str(path))
        assert path.stat().st_size == 50

    def test_corrupt_flips_a_byte_keeping_size(self, tmp_path):
        path = tmp_path / "payload.json"
        original = bytes(range(64))
        path.write_bytes(original)
        install(
            FaultSchedule(specs=(FaultSpec(site="site.a", kind="corrupt"),))
        )
        fault_point("site.a", path=str(path))
        mangled = path.read_bytes()
        assert len(mangled) == len(original)
        assert mangled != original
        assert sum(a != b for a, b in zip(mangled, original)) == 1

    def test_file_kind_without_path_context_is_a_config_error(self):
        install(FaultSchedule(specs=(FaultSpec(site="site.a", kind="torn"),)))
        with pytest.raises(FaultInjectionError, match="path"):
            fault_point("site.a")

    def test_injected_faults_are_counted(self, metrics):
        install(
            FaultSchedule(
                specs=(
                    FaultSpec(site="site.a", kind="raise"),
                    FaultSpec(site="site.b", kind="pickle"),
                )
            )
        )
        with pytest.raises(InjectedFault):
            fault_point("site.a")
        with pytest.raises(pickle.PicklingError):
            fault_point("site.b")
        counters = obs.snapshot()["counters"]
        assert counters["fault.injected.raise"] == 1
        assert counters["fault.injected.pickle"] == 1


class TestPickleTransport:
    def test_schedule_survives_pickling_to_workers(self):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(site="parallel.worker.start", kind="kill",
                          point="p[0]", submit=0),
            ),
            seed=11,
        )
        assert pickle.loads(pickle.dumps(schedule)) == schedule
