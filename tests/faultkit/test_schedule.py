"""FaultSchedule / FaultSpec: validation, round-trips, seeded draws."""

import random

import pytest

from repro.errors import FaultInjectionError
from repro.faultkit import (
    ENV_VAR,
    KINDS,
    FaultSchedule,
    FaultSpec,
    parse_fault_schedule,
    schedule_from_env,
)
from repro.faultkit.schedule import FILE_SITES, SITES, WORKER_SITES


class TestFaultSpecValidation:
    def test_minimal_spec(self):
        spec = FaultSpec(site="executor.attempt.start", kind="raise")
        assert spec.times == 1
        assert spec.point is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown kind"):
            FaultSpec(site="executor.attempt.start", kind="explode")

    def test_empty_site_rejected(self):
        with pytest.raises(FaultInjectionError, match="site"):
            FaultSpec(site="", kind="raise")

    def test_negative_matchers_rejected(self):
        for name in ("attempt", "submit", "occurrence"):
            with pytest.raises(FaultInjectionError, match=name):
                FaultSpec(site="x", kind="raise", **{name: -1})

    def test_zero_times_rejected(self):
        with pytest.raises(FaultInjectionError, match="times"):
            FaultSpec(site="x", kind="raise", times=0)


class TestFaultSpecMatching:
    def test_exact_site_and_glob(self):
        spec = FaultSpec(site="checkpoint.write.*", kind="torn")
        assert spec.matches("checkpoint.write.post", {}, 0)
        assert spec.matches("checkpoint.write.mid", {}, 0)
        assert not spec.matches("executor.attempt.start", {}, 0)

    def test_point_and_attempt_matchers(self):
        spec = FaultSpec(
            site="executor.attempt.start", kind="raise", point="p[1]", attempt=0
        )
        assert spec.matches(
            "executor.attempt.start", {"point": "p[1]", "attempt": 0}, 0
        )
        assert not spec.matches(
            "executor.attempt.start", {"point": "p[2]", "attempt": 0}, 0
        )
        assert not spec.matches(
            "executor.attempt.start", {"point": "p[1]", "attempt": 1}, 0
        )

    def test_occurrence_matcher(self):
        spec = FaultSpec(site="checkpoint.write.post", kind="corrupt", occurrence=2)
        assert not spec.matches("checkpoint.write.post", {}, 0)
        assert not spec.matches("checkpoint.write.post", {}, 1)
        assert spec.matches("checkpoint.write.post", {}, 2)


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(site="executor.attempt.start", kind="raise",
                          point="p[0]", attempt=1),
                FaultSpec(site="parallel.worker.start", kind="hang",
                          submit=0, arg=2.5, times=3),
                FaultSpec(site="checkpoint.write.post", kind="torn",
                          occurrence=4),
            ),
            seed=99,
        )
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_bare_list_form_accepted(self):
        schedule = FaultSchedule.from_json(
            '[{"site": "executor.attempt.start", "kind": "raise"}]'
        )
        assert len(schedule.specs) == 1
        assert schedule.seed is None

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown field"):
            FaultSchedule.from_json('[{"site": "x", "kind": "raise", "nope": 1}]')

    def test_missing_required_fields_rejected(self):
        with pytest.raises(FaultInjectionError, match="required"):
            FaultSchedule.from_json('[{"site": "x"}]')

    def test_invalid_json_rejected_with_position(self):
        with pytest.raises(FaultInjectionError, match="char"):
            FaultSchedule.from_json("[{bad")

    def test_non_list_specs_rejected(self):
        with pytest.raises(FaultInjectionError, match="list"):
            FaultSchedule.from_json('{"specs": 5}')
        with pytest.raises(FaultInjectionError, match="list"):
            FaultSchedule.from_json('"just a string"')

    def test_non_integer_seed_rejected(self):
        with pytest.raises(FaultInjectionError, match="seed"):
            FaultSchedule.from_json('{"seed": "abc", "specs": []}')


class TestTruthiness:
    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert not FaultSchedule(specs=(), seed=3)

    def test_populated_schedule_is_truthy(self):
        assert FaultSchedule(specs=(FaultSpec(site="x", kind="raise"),))


class TestSeeded:
    def test_same_rng_state_same_schedule(self):
        keys = [f"p[{i}]" for i in range(5)]
        a = FaultSchedule.seeded(random.Random(7), keys, seed=7)
        b = FaultSchedule.seeded(random.Random(7), keys, seed=7)
        assert a == b
        assert a.seed == 7

    def test_different_seeds_differ_somewhere(self):
        keys = [f"p[{i}]" for i in range(5)]
        drawn = {
            FaultSchedule.seeded(random.Random(s), keys).specs for s in range(20)
        }
        assert len(drawn) > 1

    def test_kill_and_hang_pinned_to_worker_sites(self):
        keys = ["a", "b"]
        for s in range(30):
            schedule = FaultSchedule.seeded(
                random.Random(s), keys, kinds=("kill", "hang"), max_faults=4
            )
            for spec in schedule.specs:
                assert spec.site in WORKER_SITES
                assert spec.submit == 0

    def test_file_kinds_pinned_to_checkpoint_writes(self):
        keys = ["a", "b", "c"]
        for s in range(30):
            schedule = FaultSchedule.seeded(
                random.Random(s), keys, kinds=("torn", "corrupt"), max_faults=4
            )
            for spec in schedule.specs:
                assert spec.site in FILE_SITES
                assert spec.occurrence is not None

    def test_kind_subset_is_honoured(self):
        schedule = FaultSchedule.seeded(
            random.Random(3), ["k"], kinds=("raise",), max_faults=5
        )
        assert {spec.kind for spec in schedule.specs} == {"raise"}

    def test_empty_keys_rejected(self):
        with pytest.raises(FaultInjectionError, match="point key"):
            FaultSchedule.seeded(random.Random(0), [])

    def test_invalid_kind_pool_rejected(self):
        with pytest.raises(FaultInjectionError, match="kinds"):
            FaultSchedule.seeded(random.Random(0), ["k"], kinds=("nope",))

    def test_canonical_site_tables_cover_generated_specs(self):
        keys = ["a"]
        for s in range(10):
            schedule = FaultSchedule.seeded(random.Random(s), keys, kinds=KINDS)
            for spec in schedule.specs:
                assert spec.site in SITES


class TestParsing:
    def test_inline_json(self):
        schedule = parse_fault_schedule(
            '[{"site": "executor.attempt.start", "kind": "raise"}]'
        )
        assert schedule.specs[0].kind == "raise"

    def test_file_path(self, tmp_path):
        path = tmp_path / "faults.json"
        original = FaultSchedule(
            specs=(FaultSpec(site="parallel.result", kind="pickle"),), seed=1
        )
        path.write_text(original.to_json())
        assert parse_fault_schedule(path) == original

    def test_missing_file_diagnostic(self, tmp_path):
        with pytest.raises(FaultInjectionError, match="cannot read"):
            parse_fault_schedule(tmp_path / "nope.json")

    def test_env_unset_or_blank_means_disabled(self):
        assert schedule_from_env({}) is None
        assert schedule_from_env({ENV_VAR: "   "}) is None

    def test_env_inline_json(self):
        schedule = schedule_from_env(
            {ENV_VAR: '{"seed": 5, "specs": []}'}
        )
        assert schedule is not None
        assert schedule.seed == 5

    def test_env_file_path(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text('[{"site": "precompute.tables", "kind": "raise"}]')
        schedule = schedule_from_env({ENV_VAR: str(path)})
        assert schedule is not None
        assert schedule.specs[0].site == "precompute.tables"
