"""Tests for the switching-power companion metric."""

import pytest

from repro import ArchitectureSpec, build_architecture, compute_rank
from repro.core.scenarios import baseline_problem
from repro.errors import RankComputationError
from repro.power.model import (
    PowerModel,
    repeater_switching_energy,
    sweep_rank_power,
    wire_switching_energy,
    witness_power,
)
from repro.rc.models import WireRC
from repro.tech.device import DeviceParameters
from repro.units import FF

FAST = dict(bunch_size=2000, repeater_units=128)


@pytest.fixture(scope="module")
def problem():
    return baseline_problem("130nm", 100_000)


@pytest.fixture(scope="module")
def solved(problem):
    result = compute_rank(problem, collect_witness=True, **FAST)
    tables, _ = problem.tables(bunch_size=2000)
    return tables, result


@pytest.fixture
def device():
    return DeviceParameters(
        output_resistance=2290.0,
        input_capacitance=0.6e-15,
        parasitic_capacitance=0.4e-15,
        min_inverter_area=2.5e-14,
        supply_voltage=1.2,
    )


class TestPrimitives:
    def test_wire_energy_cv2(self):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        assert wire_switching_energy(rc, 1e-3, 1.2) == pytest.approx(
            2e-10 * 1e-3 * 1.44
        )

    def test_wire_energy_linear_in_length(self):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        assert wire_switching_energy(rc, 2e-3, 1.0) == pytest.approx(
            2 * wire_switching_energy(rc, 1e-3, 1.0)
        )

    def test_wire_energy_quadratic_in_vdd(self):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        assert wire_switching_energy(rc, 1e-3, 2.0) == pytest.approx(
            4 * wire_switching_energy(rc, 1e-3, 1.0)
        )

    def test_repeater_energy(self, device):
        energy = repeater_switching_energy(device, 50.0, 3, 1.2)
        assert energy == pytest.approx(3 * 50 * FF * 1.44)

    def test_zero_stages_zero_energy(self, device):
        assert repeater_switching_energy(device, 50.0, 0, 1.2) == 0.0

    def test_validation(self, device):
        rc = WireRC(resistance=1e5, capacitance=2e-10)
        with pytest.raises(RankComputationError):
            wire_switching_energy(rc, -1.0, 1.2)
        with pytest.raises(RankComputationError):
            wire_switching_energy(rc, 1.0, 0.0)
        with pytest.raises(RankComputationError):
            repeater_switching_energy(device, 0.0, 1, 1.2)
        with pytest.raises(RankComputationError):
            repeater_switching_energy(device, 1.0, -1, 1.2)


class TestPowerModel:
    def test_defaults(self, device):
        model = PowerModel()
        assert model.vdd(device) == pytest.approx(1.2)

    def test_override(self, device):
        model = PowerModel(supply_voltage=0.9)
        assert model.vdd(device) == pytest.approx(0.9)

    def test_invalid_activity(self):
        with pytest.raises(RankComputationError):
            PowerModel(activity_factor=0.0)
        with pytest.raises(RankComputationError):
            PowerModel(activity_factor=1.5)


class TestWitnessPower:
    def test_breakdown_positive(self, solved):
        tables, result = solved
        power = witness_power(tables, result.witness, 5e8)
        assert power.wire_power > 0
        assert power.repeater_power > 0
        assert power.total == pytest.approx(
            power.wire_power + power.repeater_power
        )

    def test_covers_rank_wires(self, solved):
        tables, result = solved
        power = witness_power(tables, result.witness, 5e8)
        assert power.wires == result.rank

    def test_linear_in_clock(self, solved):
        tables, result = solved
        slow = witness_power(tables, result.witness, 5e8)
        fast = witness_power(tables, result.witness, 1e9)
        assert fast.total == pytest.approx(2 * slow.total)

    def test_linear_in_activity(self, solved):
        tables, result = solved
        low = witness_power(tables, result.witness, 5e8, PowerModel(0.1))
        high = witness_power(tables, result.witness, 5e8, PowerModel(0.2))
        assert high.total == pytest.approx(2 * low.total)

    def test_plausible_magnitude(self, solved):
        """A 100k-gate prefix at 500 MHz: milliwatts to a few watts."""
        tables, result = solved
        power = witness_power(tables, result.witness, 5e8)
        assert 1e-5 < power.total < 10.0

    def test_invalid_clock(self, solved):
        tables, result = solved
        with pytest.raises(RankComputationError):
            witness_power(tables, result.witness, 0.0)


class TestRankPowerSweep:
    def test_lower_k_more_rank_less_power_per_wire(self, problem):
        """The co-optimization story: low-k buys rank AND energy."""
        problems = []
        for k in (3.9, 2.8):
            spec = ArchitectureSpec(node=problem.die.node, permittivity=k)
            problems.append((k, problem.with_arch(build_architecture(spec))))
        rows = sweep_rank_power(problems, bunch_size=2000, repeater_units=128)
        (k_hi, res_hi, pow_hi), (k_lo, res_lo, pow_lo) = rows
        assert res_lo.rank > res_hi.rank
        assert pow_lo.per_wire() < pow_hi.per_wire()
