#!/usr/bin/env python3
"""Closed-loop load generator for the serving layer: ``BENCH_service.json``.

Starts a :class:`repro.service.RankService` in-process on an ephemeral
port, then measures the serving contract end to end over real
sockets:

* **memoization gate** — one cold solve, then the identical request
  again; the memoized replay must be byte-identical AND faster than
  the cold solve, or the run exits non-zero (this is the acceptance
  gate CI's ``service-smoke`` job asserts).
* **closed loop** — ``--clients`` concurrent keep-alive connections
  each issue requests back-to-back (no open-loop arrival process) over
  a working set of ``--points`` distinct rank requests for
  ``--requests`` total; requests/sec and latency quantiles (p50/p99)
  are reported per the observed distribution.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --gates 200000 --points 4 --clients 4 --requests 200

Wall-clock absolute numbers are machine-dependent; the gates
(byte-identity, hit-faster-than-cold, zero transport errors) are not.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Schema of the emitted file.
BENCH_FORMAT = "repro.bench_service"
BENCH_VERSION = 1


def _cpu_affinity() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class _Client:
    """One keep-alive HTTP/1.1 connection speaking just enough HTTP."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: bench\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n\r\n"
        )
        self._writer.write(head.encode("ascii") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        payload = await self._reader.readexactly(int(headers["content-length"]))
        return status, headers, payload


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def _run_bench(args: argparse.Namespace) -> Dict[str, object]:
    from repro.schema import RankRequest
    from repro.service import RankService, ServiceConfig
    from repro.units import MEGA

    config = ServiceConfig(
        port=0,
        workers=args.workers,
        queue_depth=max(args.queue_depth, args.clients),
        cache_entries=args.cache_entries,
        default_deadline_s=120.0,
    )
    service = RankService(config)
    await service.start()
    try:
        # Distinct working-set points: vary the clock so each is a
        # different fingerprint but shares coarsened tables.
        requests = [
            RankRequest(
                gates=args.gates,
                bunch_size=args.bunch,
                repeater_units=args.units,
                clock_frequency=(450.0 + 10.0 * index) * MEGA,
            )
            for index in range(args.points)
        ]
        bodies = [json.dumps(r.canonicalize()).encode("utf-8") for r in requests]

        probe = _Client(config.host, service.port)
        await probe.connect()

        # --- memoization gate: cold solve vs byte-identical replay.
        t0 = time.perf_counter()
        status, headers, first = await probe.request("POST", "/v1/rank", bodies[0])
        cold_s = time.perf_counter() - t0
        assert status == 200, f"cold solve failed: {status} {first!r}"
        assert headers.get("x-repro-cache") == "miss", headers
        t0 = time.perf_counter()
        status, headers, again = await probe.request("POST", "/v1/rank", bodies[0])
        hit_s = time.perf_counter() - t0
        assert status == 200, f"memoized request failed: {status}"
        assert headers.get("x-repro-cache") == "hit", headers
        byte_identical = first == again
        speedup = cold_s / hit_s if hit_s > 0 else float("inf")

        # --- closed loop over the working set.
        latencies: List[float] = []
        statuses: Dict[int, int] = {}
        counter = {"issued": 0}

        async def client_loop(client_index: int) -> None:
            client = _Client(config.host, service.port)
            await client.connect()
            try:
                while counter["issued"] < args.requests:
                    index = counter["issued"]
                    counter["issued"] += 1
                    body = bodies[(client_index + index) % len(bodies)]
                    start = time.perf_counter()
                    status, _, _ = await client.request("POST", "/v1/rank", body)
                    latencies.append(time.perf_counter() - start)
                    statuses[status] = statuses.get(status, 0) + 1
            finally:
                await client.close()

        loop_start = time.perf_counter()
        await asyncio.gather(
            *(client_loop(index) for index in range(args.clients))
        )
        loop_s = time.perf_counter() - loop_start

        status, _, metrics_raw = await probe.request("GET", "/v1/metrics")
        assert status == 200
        metrics = json.loads(metrics_raw)
        await probe.close()

        latencies.sort()
        completed = sum(statuses.values())
        return {
            "format": BENCH_FORMAT,
            "version": BENCH_VERSION,
            "config": {
                "gates": args.gates,
                "bunch_size": args.bunch,
                "repeater_units": args.units,
                "points": args.points,
                "clients": args.clients,
                "requests": args.requests,
                "workers": args.workers,
                "executor_mode": service.app.executor.mode,
            },
            "machine": {
                "python": platform.python_version(),
                "cpu_count": os.cpu_count(),
                "cpu_affinity": _cpu_affinity(),
            },
            "memoization": {
                "cold_s": cold_s,
                "hit_s": hit_s,
                "speedup": speedup,
                "byte_identical": byte_identical,
            },
            "closed_loop": {
                "requests": completed,
                "duration_s": loop_s,
                "rps": completed / loop_s if loop_s > 0 else 0.0,
                "p50_s": _quantile(latencies, 0.50),
                "p99_s": _quantile(latencies, 0.99),
                "max_s": latencies[-1] if latencies else 0.0,
                "statuses": {str(k): v for k, v in sorted(statuses.items())},
            },
            "service": {
                "cache": metrics["cache"],
                "counters": {
                    name: value
                    for name, value in sorted(
                        metrics["metrics"]["counters"].items()
                    )
                    if name.startswith("service.")
                },
            },
        }
    finally:
        await service.stop()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--gates", type=int, default=200_000)
    parser.add_argument("--bunch", type=int, default=5_000)
    parser.add_argument("--units", type=int, default=128)
    parser.add_argument(
        "--points", type=int, default=4, help="distinct requests in the working set"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent closed-loop connections"
    )
    parser.add_argument(
        "--requests", type=int, default=100, help="total closed-loop requests"
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--cache-entries", type=int, default=256)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    report = asyncio.run(_run_bench(args))
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    memo = report["memoization"]
    loop = report["closed_loop"]
    print(
        f"cold {memo['cold_s'] * 1e3:.1f} ms -> hit {memo['hit_s'] * 1e3:.2f} ms "
        f"({memo['speedup']:.0f}x), byte_identical={memo['byte_identical']}"
    )
    print(
        f"closed loop: {loop['requests']} requests in {loop['duration_s']:.2f}s "
        f"= {loop['rps']:.0f} rps, p50 {loop['p50_s'] * 1e3:.2f} ms, "
        f"p99 {loop['p99_s'] * 1e3:.2f} ms"
    )
    print(f"wrote {args.out}")

    # The gates: a memoized replay that is not byte-identical, or not
    # faster than the cold solve, means the serving contract is broken.
    if not memo["byte_identical"]:
        print("GATE FAILED: memoized replay is not byte-identical", file=sys.stderr)
        return 1
    if memo["hit_s"] >= memo["cold_s"]:
        print(
            "GATE FAILED: memoized hit "
            f"({memo['hit_s']:.4f}s) not faster than cold solve "
            f"({memo['cold_s']:.4f}s)",
            file=sys.stderr,
        )
        return 1
    non_200 = {k: v for k, v in loop["statuses"].items() if k != "200"}
    if non_200:
        print(f"GATE FAILED: non-200 responses: {non_200}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
