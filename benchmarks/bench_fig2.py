"""Experiment E6: Figure 2 — suboptimality of greedy assignment.

Builds the paper's counterexample shape (four near-equal wires, two
layer-pairs, budget sized to ~2.2 expensive stages) and compares the
greedy and DP solvers; the paper's separation is greedy rank 2 vs
optimal rank 4, confirmed here by exhaustive search.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from greedy_counterexample import build_figure2_problem  # noqa: E402

from repro import compute_rank  # noqa: E402
from repro.reporting.text import format_table  # noqa: E402

from .conftest import run_once  # noqa: E402


def test_figure2_greedy_vs_optimal(benchmark):
    problem = build_figure2_problem()

    def run():
        greedy = compute_rank(problem, solver="greedy")
        optimal = compute_rank(problem, solver="dp", repeater_units=256)
        brute = compute_rank(problem, solver="exhaustive", repeater_units=256)
        return greedy, optimal, brute

    greedy, optimal, brute = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("assignment", "rank (repro)", "rank (paper)"),
            [
                ("greedy top-down", greedy.rank, 2),
                ("optimal (DP)", optimal.rank, 4),
                ("exhaustive", brute.rank, 4),
            ],
            title="E6: Figure 2 counterexample",
        )
    )
    assert greedy.rank == 2
    assert optimal.rank == 4
    assert brute.rank == 4
