"""Calibration ablations: the interpretation knobs DESIGN.md documents.

Two of the paper's under-specified modelling choices are exposed as
switches; these benchmarks run the baseline under the alternatives and
demonstrate *why* the calibrated defaults were chosen:

* ``driver_policy``: charging every delay-met wire's sized driver to
  the budget (default) vs free minimum-size-driver passes — the free
  policy creates a large zero-cost region that breaks the paper's
  linear-in-budget R column;
* ``pair_capacity_factor``: a layer-pair as two routing layers (2.0,
  default) vs the pseudocode's single-A_d reading (1.0) — under 1.0 the
  paper's own baseline WLD does not fit its own baseline stack
  (Definition 3 rank 0).
"""

import dataclasses

from repro import compute_rank
from repro.reporting.text import format_table

from .conftest import BENCH_OPTIONS, run_once


def test_driver_policy_ablation(benchmark, bench_baseline):
    def run():
        rows = []
        for fraction in (0.1, 0.3, 0.5):
            scaled = bench_baseline.with_repeater_fraction(fraction)
            budgeted = compute_rank(scaled, **BENCH_OPTIONS)
            free = compute_rank(
                dataclasses.replace(scaled, driver_policy="free-bare"),
                **BENCH_OPTIONS,
            )
            rows.append(
                (
                    fraction,
                    f"{budgeted.normalized:.6f}",
                    f"{free.normalized:.6f}",
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("R", "budgeted driver (default)", "free bare driver"),
            rows,
            title="Driver-policy ablation across the R sweep",
        )
    )
    # the free policy floors rank at its zero-cost region: its R=0.1
    # value stays far above the budgeted one, flattening the column
    budgeted_span = float(rows[-1][1]) - float(rows[0][1])
    free_span = float(rows[-1][2]) - float(rows[0][2])
    assert budgeted_span > free_span


def test_pair_capacity_ablation(benchmark, bench_baseline):
    def run():
        physical = compute_rank(bench_baseline, **BENCH_OPTIONS)
        literal = compute_rank(
            dataclasses.replace(bench_baseline, pair_capacity_factor=1.0),
            **BENCH_OPTIONS,
        )
        return physical, literal

    physical, literal = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("pair capacity", "fits", "rank", "normalized"),
            [
                ("2 x A_d (two layers, default)", physical.fits, physical.rank,
                 f"{physical.normalized:.6f}"),
                ("1 x A_d (pseudocode literal)", literal.fits, literal.rank,
                 f"{literal.normalized:.6f}"),
            ],
            title="Pair-capacity ablation (Definition 3 at 1 x A_d)",
        )
    )
    assert physical.fits
    assert not literal.fits  # the paper's WLD cannot fit at 1 x A_d
    assert literal.rank == 0
