"""Experiment E5: the abstract's Miller-vs-permittivity equivalence.

Sweeps K and M from the baseline, inverts both sweeps at common rank
levels and prints the equivalent reductions.  The paper pairs k = 2.4
(-38%) with M = 1.15 (-42.5%) as "the same rank improvement"; on its
own Table 4 data precise interpolation gives a ~1:1 reduction ratio,
and the reproduction must land in the same band.
"""

from repro.analysis.sensitivity import miller_permittivity_equivalence
from repro.analysis.sweep import sweep_miller, sweep_permittivity
from repro.reporting.tables import format_equivalence_table

from .conftest import BENCH_OPTIONS, run_once


def test_headline_equivalence(benchmark, bench_baseline):
    def run():
        k_sweep = sweep_permittivity(bench_baseline, **BENCH_OPTIONS)
        m_sweep = sweep_miller(bench_baseline, **BENCH_OPTIONS)
        return k_sweep, m_sweep

    k_sweep, m_sweep = run_once(benchmark, run)
    points = miller_permittivity_equivalence(k_sweep, m_sweep, num_levels=8)
    print()
    print(
        format_equivalence_table(
            points,
            title="E5: equivalent K vs M reductions (paper: 38% K ~ 42.5% M)",
        )
    )
    ratios = [p.ratio for p in points if p.ratio is not None]
    assert ratios, "sweeps must overlap at some rank level"
    for ratio in ratios:
        assert 0.5 < ratio < 2.0
