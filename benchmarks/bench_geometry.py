"""Experiment E17: geometric-parameter impact on rank.

The paper's introduction: "We use our new IA metric to quantitatively
compare impacts of geometric parameters as well as process and material
technology advances."  This benchmark sweeps uniform scaling of the
semi-global and global tiers around the baseline and prints the rank
response, quantifying the fat-wire trade-off through the metric.
"""

from repro.analysis.sweep import sweep_tier_geometry
from repro.reporting.tables import format_sweep_table

from .conftest import BENCH_OPTIONS, run_once

SCALES = (0.75, 1.0, 1.25, 1.5, 2.0)


def test_geometry_semi_global(benchmark, bench_baseline):
    sweep = run_once(
        benchmark,
        lambda: sweep_tier_geometry(
            bench_baseline, tier="semi_global", values=SCALES, **BENCH_OPTIONS
        ),
    )
    print()
    print(format_sweep_table(sweep, title="E17: semi-global tier scaling"))
    assert all(p.result.fits for p in sweep.points)


def test_geometry_global(benchmark, bench_baseline):
    sweep = run_once(
        benchmark,
        lambda: sweep_tier_geometry(
            bench_baseline, tier="global", values=SCALES, **BENCH_OPTIONS
        ),
    )
    print()
    print(format_sweep_table(sweep, title="E17b: global tier scaling"))
    assert all(p.result.fits for p in sweep.points)
