"""Experiment E18: the Section 6 closing claim, quantified.

"It is not possible to enable future MPU-class designs by material
improvements alone."  Two roadmaps for a design doubling per
generation: stay on 180 nm spending all material headroom (low-k +
full shielding) vs move down the node ladder at plain oxide.  The
materials-only trajectory must decay and be overtaken.
"""

from repro.analysis.roadmap import materials_shortfall, roadmap_study
from repro.reporting.text import format_table

from .conftest import BENCH_GATES, run_once


def test_materials_alone_cannot_scale(benchmark):
    base = max(50_000, BENCH_GATES // 4)
    materials_only, full_scaling = run_once(
        benchmark,
        lambda: roadmap_study(base, bunch_size=10_000, repeater_units=512),
    )
    rows = []
    for frozen, scaled in zip(materials_only, full_scaling):
        rows.append(
            (
                f"gen {frozen.generation} ({frozen.gate_count:,} gates)",
                f"{frozen.node_name} best-materials: {frozen.result.normalized:.4f}",
                f"{scaled.node_name} baseline: {scaled.result.normalized:.4f}",
            )
        )
    print()
    print(
        format_table(
            ("generation", "materials-only roadmap", "node-scaling roadmap"),
            rows,
            title="E18: materials-only vs node scaling",
        )
    )
    shortfall = materials_shortfall(materials_only, full_scaling)
    print(f"final-generation shortfall of materials-only: {shortfall:+.4f}")
    # one-shot boost at gen 0 ...
    assert (
        materials_only[0].result.normalized > full_scaling[0].result.normalized
    )
    # ... but overtaken by the last generation (the paper's claim)
    assert shortfall > 0
