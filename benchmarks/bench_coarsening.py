"""Experiment E8: Section 5.1 bunching accuracy and runtime.

Sweeps the bunch size from coarse to fine, printing rank, the paper's
a-priori error bound and runtime per point, and asserts the bound holds
pairwise between all runs.
"""

from repro.analysis.coarsening import coarsening_study, max_pairwise_deviation
from repro.reporting.text import format_table

from .conftest import run_once

BUNCH_SIZES = [50_000, 20_000, 10_000, 5_000, 2_000]


def test_bunching_accuracy_runtime(benchmark, bench_baseline):
    points = run_once(
        benchmark,
        lambda: coarsening_study(bench_baseline, bunch_sizes=BUNCH_SIZES),
    )
    rows = [
        (
            p.bunch_size,
            p.result.rank,
            f"{p.result.normalized:.6f}",
            p.error_bound,
            f"{p.runtime_seconds * 1e3:.0f} ms",
        )
        for p in points
    ]
    print()
    print(
        format_table(
            ("bunch size", "rank", "normalized", "error bound", "solver time"),
            rows,
            title="E8: bunching trade-off (paper bunch size: 10000)",
        )
    )
    ranks = [p.result.rank for p in points]
    bounds = [p.error_bound for p in points]
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            assert abs(ranks[i] - ranks[j]) <= bounds[i] + bounds[j]
    print(f"max pairwise deviation: {max_pairwise_deviation(points):,} wires")
