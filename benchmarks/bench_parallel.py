"""Parallel batch throughput and shared-precompute reuse.

The tentpole claim: dispatching independent batch points to worker
processes raises points/sec without changing a single byte of persisted
output, and the precompute cache removes the redundant coarse-WLD work
every point used to repeat.  These benchmarks measure both halves —
run ``tools/bench_to_json.py`` for the machine-readable version CI
gates on.

Speedup scales with physical cores; on a single-core runner the
parallel path is expected to tie or lose slightly (the identity check
is what must hold everywhere).
"""

import os
import time

from repro.analysis.sweep import sweep_repeater_fraction
from repro.api import PrecomputeCache, baseline_problem
from repro.reporting.text import format_table

from .conftest import BENCH_GATES, BENCH_OPTIONS, run_once

JOBS = min(4, os.cpu_count() or 1)


def test_sweep_points_per_second(benchmark):
    """Points/sec of a Table 4 sweep, sequential vs parallel."""
    problem = baseline_problem("130nm", BENCH_GATES)

    def run():
        rows = []
        for jobs in (1, JOBS):
            start = time.perf_counter()
            sweep = sweep_repeater_fraction(problem, jobs=jobs, **BENCH_OPTIONS)
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    jobs,
                    len(sweep.points),
                    f"{len(sweep.points) / elapsed:.2f} pts/s",
                    f"{elapsed * 1e3:.0f} ms",
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("jobs", "points", "throughput", "wall"),
            rows,
            title=f"E18: sweep throughput ({os.cpu_count()} CPUs)",
        )
    )


def test_precompute_cache_reuse(benchmark):
    """Shared-precompute hit rate across one sweep's points."""
    problem = baseline_problem("130nm", BENCH_GATES)

    def run():
        rows = []
        caches = (
            ("off", PrecomputeCache(max_entries=0)),
            ("on", PrecomputeCache()),
        )
        for label, cache in caches:
            start = time.perf_counter()
            sweep = sweep_repeater_fraction(
                problem, jobs=1, cache=cache, **BENCH_OPTIONS
            )
            elapsed = time.perf_counter() - start
            stats = cache.stats()
            rows.append(
                (
                    label,
                    len(sweep.points),
                    stats["hits"]["coarsened"],
                    stats["hits"]["tables"],
                    f"{elapsed * 1e3:.0f} ms",
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("cache", "points", "coarse hits", "table hits", "wall"),
            rows,
            title="E18b: precompute reuse across sweep points",
        )
    )
    # The warmed cache must serve every point's coarse WLD after the miss.
    assert rows[1][2] >= rows[1][1] - 1
