"""Experiment E11: target-delay model ablation (paper Section 6).

The paper notes its linear per-connection requirement
``d_i = (l_i/l_max)/f_c`` is questionable because unrepeatered delay
grows quadratically with length, and announces study of alternatives.
This ablation runs the baseline under both the linear model and the
quadratic alternative ``d_i = (l_i/l_max)^2/f_c``, quantifying how much
the metric depends on that modelling choice: quadratic targets collapse
the short-wire bulk's slack and with it the achievable rank.
"""

from repro import compute_rank
from repro.reporting.text import format_table

from .conftest import BENCH_OPTIONS, run_once


def test_linear_vs_quadratic_targets(benchmark, bench_baseline):
    def run():
        linear = compute_rank(bench_baseline, **BENCH_OPTIONS)
        quadratic = compute_rank(
            bench_baseline.with_target_kind("quadratic"), **BENCH_OPTIONS
        )
        return linear, quadratic

    linear, quadratic = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("target model", "rank", "normalized"),
            [
                ("linear (paper)", linear.rank, f"{linear.normalized:.6f}"),
                ("quadratic (Sec. 6)", quadratic.rank, f"{quadratic.normalized:.6f}"),
            ],
            title="E11: per-connection target-delay model ablation",
        )
    )
    assert linear.fits and quadratic.fits
    assert 0 < quadratic.rank < linear.rank
