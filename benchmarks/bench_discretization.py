"""Ablation: repeater-budget discretization accuracy vs cost.

DESIGN.md calls out the budget-cell discretization as a design choice
(rounding once per (pair, block), conservatively).  This benchmark
quantifies it: rank as a function of cell count must be non-decreasing
(rounding loss shrinks) and converge — the delta between 512 and 4096
cells should be far below the bunching error bound.
"""

from repro import compute_rank
from repro.reporting.text import format_table

from .conftest import run_once

CELLS = (32, 128, 512, 2048)


def test_budget_cell_convergence(benchmark, bench_baseline):
    def run():
        rows = []
        for cells in CELLS:
            result = compute_rank(
                bench_baseline, bunch_size=10_000, repeater_units=cells
            )
            rows.append((cells, result.rank, result.error_bound))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("budget cells", "rank", "bunch error bound"),
            rows,
            title="Discretization ablation: rank vs budget cells",
        )
    )
    ranks = [row[1] for row in rows]
    assert ranks == sorted(ranks)  # conservative rounding only shrinks
    # convergence: the last refinement moves rank by less than the
    # bunching error bound
    assert ranks[-1] - ranks[-2] <= rows[-1][2]
