"""Shared benchmark configuration.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1-E11) and prints the paper-shaped rows next to the paper's values.

Scale knob: ``REPRO_BENCH_GATES`` (default 1_000_000 — the paper's
baseline design; set e.g. 200000 for a quick pass).  Heavy benchmarks
run exactly one round via ``benchmark.pedantic`` so a full run stays in
the minutes range.
"""

from __future__ import annotations

import os

import pytest

from repro.api import baseline_problem

#: Gate count used by the table/figure benchmarks.
BENCH_GATES = int(os.environ.get("REPRO_BENCH_GATES", "1000000"))

#: Coarsening and discretization used everywhere (paper: bunch 10000).
BENCH_OPTIONS = dict(bunch_size=10_000, repeater_units=512)


@pytest.fixture(scope="session")
def bench_baseline():
    """The Table 2 baseline problem at benchmark scale."""
    return baseline_problem("130nm", BENCH_GATES)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
