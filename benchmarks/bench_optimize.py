"""Experiment E12 (extension): Section 6 architecture optimization.

The paper's future-work programme — "direct optimization of
interconnect architectures according to our proposed metric" — run on
the baseline design: search tier allocations x material classes x
shielding levels under a 12-metal-layer budget, print the
rank-vs-layers Pareto frontier, and verify two structural findings:

* the best stack buys the low-k dielectric class (materials matter), and
* it also buys shielding (M < 2) — the paper's "co-optimize across
  material, process and design" conclusion, since neither knob alone
  wins.
"""

from repro.api import DesignSpace, optimize_rank
from repro.reporting.text import format_table

from .conftest import BENCH_GATES, run_once

from repro.api import baseline_problem


def test_architecture_optimization(benchmark):
    problem = baseline_problem("130nm", min(BENCH_GATES, 400_000))
    space = DesignSpace(
        node=problem.die.node,
        local_pairs=(1, 2),
        semi_global_pairs=(1, 2, 3),
        global_pairs=(1, 2),
        permittivities=(3.9, 3.6, 2.8),
        miller_factors=(2.0, 1.5, 1.0),
        max_metal_layers=12,
    )
    outcome = run_once(
        benchmark,
        lambda: optimize_rank(
            problem,
            space,
            exhaustive_limit=200,
            bunch_size=10_000,
            repeater_units=512,
        ),
    )
    rows = [
        (c.label(), c.metal_layers, c.result.rank, f"{c.normalized:.6f}")
        for c in outcome.pareto
    ]
    print()
    print(
        format_table(
            ("stack", "layers", "rank", "normalized"),
            rows,
            title=f"E12: Pareto frontier over {space.size()} candidates",
        )
    )
    print(f"best: {outcome.best.label()}")
    assert outcome.best.spec.permittivity < 3.9
    assert outcome.best.spec.miller_factor < 2.0
    assert outcome.best.result.fits

    # The honest variant: the Miller factor must be bought with shield
    # tracks (3x routing per signal at M=1.0).
    honest = optimize_rank(
        problem,
        space,
        exhaustive_limit=200,
        shielding_aware=True,
        bunch_size=10_000,
        repeater_units=512,
    )
    print(
        f"shielding-aware best: {honest.best.label()} "
        f"(normalized {honest.best.normalized:.6f} vs naive "
        f"{outcome.best.normalized:.6f})"
    )
    assert honest.best.result.fits
    assert honest.best.result.rank <= outcome.best.result.rank
