"""Extension: budget elasticity — the whole rank(budget) curve at once.

Complements the Table 4 R column (E4): the R sweep couples budget to
die inflation (Eq. 6), while this curve holds the die fixed and maps
rank against spendable repeater area directly.  Its near-constant slope
— roughly one marginal wire certified per s_opt repeater's worth of
area — is the arithmetic behind the paper's linear R column.
"""

import numpy as np

# Internal import on purpose: this microbenchmark isolates the DP
# curve pass from the table build, which api.budget_curve folds in.
from repro.core.curve import solve_budget_rank_curve  # noqa: RPL004
from repro.reporting.text import format_table
from repro.units import to_mm2

from .conftest import BENCH_GATES, run_once

from repro.api import baseline_problem


def test_budget_rank_curve(benchmark):
    problem = baseline_problem("130nm", min(BENCH_GATES, 400_000))
    tables, _ = problem.tables(bunch_size=10_000)
    curve = run_once(
        benchmark, lambda: solve_budget_rank_curve(tables, repeater_units=128)
    )
    total = tables.total_wires
    rows = []
    for cells in (0, 16, 32, 48, 64, 80, 96, 112, 128):
        area = cells * curve.cell_area
        rows.append(
            (
                cells,
                f"{to_mm2(area):.3f}",
                curve.ranks[cells],
                f"{curve.ranks[cells] / total:.6f}",
            )
        )
    print()
    print(
        format_table(
            ("budget cells", "area [mm^2]", "rank", "normalized"),
            rows,
            title="Budget elasticity at fixed die (rank per repeater area)",
        )
    )
    slopes = curve.marginal_wires_per_cell()
    mid = slopes[len(slopes) // 4: 3 * len(slopes) // 4]
    print(
        f"mid-curve slope: {np.mean(mid):.0f} wires/cell "
        f"(cv {np.std(mid) / max(np.mean(mid), 1):.2f})"
    )
    assert curve.fits
    assert list(curve.ranks) == sorted(curve.ranks)
    # the interior of the curve keeps climbing (budget stays binding)
    assert np.mean(mid) > 0
