"""Substrate micro-benchmarks: WLD generation and table construction.

Not a paper table — these track the cost of the two precomputation
stages every experiment pays: generating the Davis WLD and building the
per-(pair, group) assignment tables.  Regressions here multiply into
every sweep.
"""

# Internal import on purpose: this microbenchmark times the
# assignment-table build itself, below the facade.
from repro.assign.tables import build_tables  # noqa: RPL004
from repro.api import baseline_problem
from repro.wld.davis import DavisParameters, davis_wld

from .conftest import BENCH_GATES


def test_davis_generation(benchmark):
    params = DavisParameters(gate_count=BENCH_GATES)
    wld = benchmark(davis_wld, params)
    assert wld.total_wires > 0


def test_table_construction(benchmark, bench_baseline):
    coarse, _ = bench_baseline.coarsened_wld(bunch_size=10_000)
    target = bench_baseline.target_model()

    def run():
        return build_tables(
            bench_baseline.arch, bench_baseline.die, coarse, target
        )

    tables = benchmark(run)
    assert tables.num_groups == coarse.num_groups


def test_single_rank_computation(benchmark, bench_baseline):
    """One full rank computation at paper scale — the paper's headline
    runtime unit ('no rank computation greater than 200s')."""
    from repro import compute_rank

    result = benchmark(
        compute_rank, bench_baseline, bunch_size=10_000, repeater_units=512
    )
    assert result.fits
