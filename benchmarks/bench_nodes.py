"""Experiment E7: baseline designs across technology nodes.

The paper ran Table 2 baselines for 1M gates at 180 nm, 1M at 130 nm
and 4M at 90 nm but printed only the 130 nm study; this benchmark
regenerates all three rows (scaled by REPRO_BENCH_GATES) and checks the
technology trend: at a fixed design size, newer nodes never rank lower.
"""

from repro.analysis.compare import compare_nodes
from repro.reporting.tables import format_node_table

from .conftest import BENCH_GATES, run_once


def test_paper_baseline_designs(benchmark):
    scale = BENCH_GATES / 1_000_000
    designs = [
        ("180nm", max(10_000, int(1_000_000 * scale))),
        ("130nm", max(10_000, int(1_000_000 * scale))),
        ("90nm", max(10_000, int(4_000_000 * scale))),
    ]
    baselines = run_once(
        benchmark, lambda: compare_nodes(designs=designs, bunch_size=10_000)
    )
    print()
    print(format_node_table(baselines, title="E7: Section 5.2 baseline designs"))
    assert all(b.result.fits for b in baselines)


def test_fixed_design_across_nodes(benchmark):
    designs = [(node, BENCH_GATES) for node in ("180nm", "130nm", "90nm")]
    baselines = run_once(
        benchmark, lambda: compare_nodes(designs=designs, bunch_size=10_000)
    )
    print()
    print(
        format_node_table(
            baselines, title=f"E7b: fixed {BENCH_GATES:,}-gate design per node"
        )
    )
    ranks = [b.normalized for b in baselines]
    assert ranks[0] <= ranks[1] <= ranks[2] + 1e-9
