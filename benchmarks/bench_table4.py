"""Experiments E1-E4: regenerate the paper's Table 4, column by column.

Each benchmark sweeps one knob of the 130 nm baseline and prints the
reproduced normalized ranks next to the paper's column.  Absolute
values need not match (device constants are reconstructed); the checked
*shapes* are the paper's:

* K column: rank increases monotonically as permittivity drops, by
  tens of percent over 3.9 -> 1.8 (paper: +45%),
* M column: likewise for the Miller factor over 2.0 -> 1.0 (paper: +39%),
* C column: rank non-increasing in clock frequency with plateau
  structure where whole length classes become infeasible (the paper's
  plateaus 0.3097 / 0.2356 are Davis CDF values our WLD reproduces),
* R column: rank grows steadily with the repeater budget (paper:
  linear, x4.2 from R=0.1 to R=0.5).
"""

import pytest

from repro.analysis.sweep import (
    sweep_clock,
    sweep_miller,
    sweep_permittivity,
    sweep_repeater_fraction,
)
from repro.reporting.tables import format_sweep_table

from .conftest import BENCH_OPTIONS, run_once


def test_table4_k(benchmark, bench_baseline):
    """E1: Table 4 column K — rank vs ILD permittivity."""
    sweep = run_once(
        benchmark, lambda: sweep_permittivity(bench_baseline, **BENCH_OPTIONS)
    )
    print()
    print(format_sweep_table(sweep))
    assert sweep.is_monotone()
    assert 0.15 < sweep.improvement() < 0.9  # paper: +45%


def test_table4_m(benchmark, bench_baseline):
    """E2: Table 4 column M — rank vs Miller coupling factor."""
    sweep = run_once(
        benchmark, lambda: sweep_miller(bench_baseline, **BENCH_OPTIONS)
    )
    print()
    print(format_sweep_table(sweep))
    assert sweep.is_monotone()
    assert 0.1 < sweep.improvement() < 0.8  # paper: +39%


def test_table4_c(benchmark, bench_baseline):
    """E3: Table 4 column C — rank vs target clock frequency."""
    sweep = run_once(
        benchmark, lambda: sweep_clock(bench_baseline, **BENCH_OPTIONS)
    )
    print()
    print(format_sweep_table(sweep))
    assert sweep.is_monotone(non_increasing=True)
    ranks = sweep.normalized_ranks()
    values = sweep.values()
    # plateau structure: consecutive high-frequency points repeat
    plateau = {
        f: r for f, r in zip(values, ranks) if 1.1e9 <= f <= 1.5e9
    }
    assert max(plateau.values()) - min(plateau.values()) < 1e-6
    # the paper's plateaus are Davis length-class shares; at full scale
    # our WLD reproduces them to ~1e-3
    if bench_baseline.wld.total_wires > 2_000_000:
        assert plateau[1.1e9] == pytest.approx(0.309706, abs=2e-3)
        assert ranks[-1] == pytest.approx(0.235608, abs=2e-3)


def test_table4_r(benchmark, bench_baseline):
    """E4: Table 4 column R — rank vs repeater area fraction."""
    sweep = run_once(
        benchmark, lambda: sweep_repeater_fraction(bench_baseline, **BENCH_OPTIONS)
    )
    print()
    print(format_sweep_table(sweep))
    assert sweep.is_monotone()
    low, high = sweep.normalized_ranks()[0], sweep.normalized_ranks()[-1]
    assert high > 2.5 * low  # paper: x4.2
