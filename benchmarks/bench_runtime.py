"""Experiment E9: rank computation runtime scaling.

The paper reports "no rank computation has runtime greater than 200s"
on a 2003-era Xeon.  This benchmark measures the DP solver's scaling
against the instance knobs that drive its complexity: design size (the
paper's O(n^4) dimension, tamed by bunching), the number of layer-pairs
``m``, and the budget discretization ``A_R`` cells.
"""

import time

from repro import ArchitectureSpec, build_architecture, compute_rank
from repro.api import baseline_problem
from repro.reporting.text import format_table

from .conftest import BENCH_GATES, BENCH_OPTIONS, run_once


def test_runtime_vs_design_size(benchmark):
    """Wall clock per rank computation as the design grows."""
    sizes = [50_000, 200_000, 500_000, 1_000_000]

    def run():
        rows = []
        for gates in sizes:
            problem = baseline_problem("130nm", gates)
            start = time.perf_counter()
            result = compute_rank(problem, **BENCH_OPTIONS)
            elapsed = time.perf_counter() - start
            rows.append((f"{gates:,}", result.rank, f"{elapsed * 1e3:.0f} ms"))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ("gates", "rank", "runtime"),
            rows,
            title="E9: rank runtime vs design size (paper bound: 200 s)",
        )
    )


def test_runtime_vs_layer_pairs(benchmark):
    """The DP is linear in m (one stage per layer-pair)."""
    base = baseline_problem("130nm", min(BENCH_GATES, 400_000))

    def run():
        rows = []
        for semi_global in (1, 2, 4, 6):
            spec = ArchitectureSpec(
                node=base.die.node, semi_global_pairs=semi_global
            )
            problem = base.with_arch(build_architecture(spec))
            start = time.perf_counter()
            result = compute_rank(problem, **BENCH_OPTIONS)
            elapsed = time.perf_counter() - start
            rows.append(
                (2 + semi_global + 1, result.rank, f"{elapsed * 1e3:.0f} ms")
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(("layer-pairs", "rank", "runtime"), rows, title="E9b"))


def test_runtime_vs_budget_cells(benchmark):
    """Budget discretization drives state count (the paper's A_R^3)."""
    base = baseline_problem("130nm", min(BENCH_GATES, 400_000))

    def run():
        rows = []
        for units in (64, 256, 1024):
            start = time.perf_counter()
            result = compute_rank(base, bunch_size=10_000, repeater_units=units)
            elapsed = time.perf_counter() - start
            rows.append((units, result.rank, f"{elapsed * 1e3:.0f} ms"))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(("budget cells", "rank", "runtime"), rows, title="E9c"))
    # finer cells never lower the rank (conservative rounding shrinks)
    ranks = [row[1] for row in rows]
    assert ranks == sorted(ranks)
