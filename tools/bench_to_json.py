#!/usr/bin/env python3
"""Machine-readable benchmark harness: emit ``BENCH_rank.json``.

Times the solver pipeline stage by stage (Davis WLD, coarsening,
assignment tables, DP solve), then runs one Table 4 sweep twice —
sequentially and through the parallel batch backend — and records
points/sec for both plus the speedup.  The parallel sweep is checked
point-by-point against the sequential one (timing fields normalized
away); any divergence makes the run exit non-zero, which is what CI's
benchmark smoke job asserts.

Run from the repository root::

    PYTHONPATH=src python tools/bench_to_json.py \
        --gates 200000 --bunch 5000 --units 128 --sweep R --jobs 4

The output schema is documented in docs/usage.md ("Reading
BENCH_rank.json").  Wall-clock numbers are machine-dependent by
nature; ``machine.cpu_count`` and ``machine.cpu_affinity`` are both
recorded — on cgroup-limited CI runners only the affinity mask bounds
real parallelism — so a speedup below the worker count on a starved
runner can be interpreted honestly.  On a multi-core machine
(affinity >= 2) a batch speedup below 1.0 fails the run: the pool must
never be slower than sequential.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Schema version of the emitted file.
BENCH_FORMAT = "repro.bench"
#: v2 added the ``metrics`` section (registry snapshot of the run);
#: v3 added the ``kernel`` section (numpy-vs-python DP backend timings
#: from :func:`repro.api.bench`, with cross-backend rank validation);
#: v4 added ``machine.cpu_affinity``, the warm-pool knobs
#: (``config.pool_mode`` / ``config.chunk_size``) and the
#: never-slower-than-sequential gate on multi-core machines.
BENCH_VERSION = 4


def _cpu_affinity() -> int:
    """CPUs this process may run on (what bounds real parallelism)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _normalized_points(sweep) -> list:
    """Sweep points as JSON payloads with timing fields zeroed."""
    from repro.reporting.persist import rank_result_to_dict

    points = []
    for point in sweep.points:
        payload = rank_result_to_dict(point.result)
        payload["stats"]["runtime_seconds"] = 0.0
        points.append({"value": point.value, "result": payload})
    return points


def _journal_statuses(sweep) -> list:
    return [(r.key, r.status) for r in sweep.journal.records]


def run_bench(args) -> dict:
    import repro.obs as obs
    from repro.api import PrecomputeCache, baseline_problem

    # Internal imports on purpose: this harness publishes *stage-resolved*
    # timings (coarsen / tables / solve) and cache statistics, which the
    # facade deliberately folds into whole-point calls.
    from repro.core.dp import solve_rank_dp  # noqa: RPL004
    from repro.core.scenarios import (  # noqa: RPL004
        BASELINE_RENT_EXPONENT,
        davis_cache_info,
    )
    from repro.analysis import sweep as sweep_mod
    from repro.wld.davis import DavisParameters, davis_wld

    bunch = args.bunch or None

    # Metrics on for the whole bench; trace events only when requested
    # (event buffering is the costlier half).  --no-metrics keeps the
    # subsystem fully off, for measuring its disabled-path overhead.
    if not args.no_metrics:
        obs.enable(trace_events=bool(args.trace))

    # --- Stage timings (one cold pass through the pipeline) ----------
    wld, davis_s = _timed(
        lambda: davis_wld(
            DavisParameters(
                gate_count=args.gates, rent_exponent=BASELINE_RENT_EXPONENT
            )
        )
    )
    problem = baseline_problem(args.node, args.gates, wld=wld)
    (coarse_pair), coarsen_s = _timed(
        lambda: problem.coarsened_wld(bunch_size=bunch)
    )
    tables, tables_s = _timed(lambda: problem.tables_on(coarse_pair[0]))
    solution, solve_s = _timed(
        lambda: solve_rank_dp(tables, repeater_units=args.units)
    )

    # --- Backend kernel comparison -----------------------------------
    # repro.api.bench solves the same baseline on both DP backends
    # (best-of-N) and raises if their ranks disagree, so a kernel
    # section in the report is also a cross-validation pass.
    from repro.api import bench as kernel_bench

    kernel = kernel_bench(
        node=args.node,
        gates=args.gates,
        bunch_size=bunch,
        repeater_units=args.units,
        repeats=args.kernel_repeats,
    )

    # --- Sequential vs parallel sweep --------------------------------
    sweeps = {
        "K": sweep_mod.sweep_permittivity,
        "M": sweep_mod.sweep_miller,
        "C": sweep_mod.sweep_clock,
        "R": sweep_mod.sweep_repeater_fraction,
    }
    sweep_fn = sweeps[args.sweep]
    values = None
    if args.points:
        defaults = {
            "K": sweep_mod.PAPER_TABLE4_K,
            "M": sweep_mod.PAPER_TABLE4_M,
            "C": sweep_mod.PAPER_TABLE4_C,
            "R": sweep_mod.PAPER_TABLE4_R,
        }[args.sweep]
        values = [v for v, _ in defaults][: args.points]

    options = dict(bunch_size=bunch, repeater_units=args.units)
    cache_seq = PrecomputeCache()
    seq, seq_s = _timed(
        lambda: sweep_fn(problem, values=values, jobs=1, cache=cache_seq, **options)
    )
    cache_par = PrecomputeCache()
    par, par_s = _timed(
        lambda: sweep_fn(
            problem,
            values=values,
            jobs=args.jobs,
            chunk_size=args.chunk_size or None,
            pool_mode=args.pool_mode,
            cache=cache_par,
            **options,
        )
    )

    identical = (
        _normalized_points(seq) == _normalized_points(par)
        and _journal_statuses(seq) == _journal_statuses(par)
    )
    n_points = len(seq.points)

    stats = solution.stats
    report = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "config": {
            "node": args.node,
            "gates": args.gates,
            "bunch_size": bunch,
            "repeater_units": args.units,
            "sweep": args.sweep,
            "points": n_points,
            "jobs": args.jobs,
            "pool_mode": args.pool_mode,
            "chunk_size": args.chunk_size or None,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "cpu_affinity": _cpu_affinity(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "stages": {
            "davis_wld_s": davis_s,
            "coarsen_s": coarsen_s,
            "tables_s": tables_s,
            "solve_dp_s": solve_s,
        },
        "kernel": kernel,
        "solver_stats": {
            "rank": solution.rank,
            "states_explored": stats.states_explored,
            "transitions": stats.transitions,
            "pack_checks": stats.pack_checks,
            "pack_successes": stats.pack_successes,
            "pack_pruned": stats.pack_pruned,
        },
        "batch": {
            "points": n_points,
            "sequential": {
                "wall_s": seq_s,
                "points_per_s": n_points / seq_s if seq_s > 0 else None,
            },
            "parallel": {
                "jobs": args.jobs,
                "pool_mode": args.pool_mode,
                "chunk_size": args.chunk_size or None,
                "wall_s": par_s,
                "points_per_s": n_points / par_s if par_s > 0 else None,
            },
            "speedup": seq_s / par_s if par_s > 0 else None,
            "identical": identical,
        },
        # Parent-side counters only: each worker populates its own
        # pickled copy of the cache, which never travels back.
        "precompute_cache": {
            "sequential": cache_seq.stats(),
            "parallel_parent": cache_par.stats(),
        },
        "davis_cache": davis_cache_info()._asdict(),
        # Full registry snapshot: counters, timing histograms, gauges
        # accumulated across the stage pass and both sweeps (parallel
        # worker deltas included via the runner's merge path).
        "metrics": obs.snapshot(),
    }
    if args.trace:
        from repro.obs.trace import write_trace

        count = write_trace(args.trace)
        print(f"trace: wrote {count} events to {args.trace}", file=sys.stderr)
    obs.disable()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--node", default="130nm")
    parser.add_argument("--gates", type=int, default=1_000_000)
    parser.add_argument(
        "--bunch", type=int, default=10_000, help="bunch size (0 = unbunched)"
    )
    parser.add_argument("--units", type=int, default=512, help="repeater cells")
    parser.add_argument(
        "--sweep", default="R", choices=("K", "M", "C", "R"), help="column to run"
    )
    parser.add_argument(
        "--points",
        type=int,
        default=0,
        help="limit the sweep to its first N values (0 = full column)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="parallel workers (0 = one per CPU)"
    )
    parser.add_argument(
        "--pool-mode",
        default="auto",
        choices=("auto", "warm", "sequential"),
        help="worker pool mode for the parallel sweep (auto falls back "
        "to sequential on a single-CPU machine)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        help="points per work-queue chunk (0 = automatic)",
    )
    parser.add_argument(
        "--kernel-repeats",
        type=int,
        default=3,
        help="best-of-N repeats per DP backend in the kernel section",
    )
    parser.add_argument("--out", default="BENCH_rank.json", help="output path")
    parser.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="also record tracing spans and write a Chrome trace-event "
        "JSON (Perfetto-loadable) to FILE",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="leave observability fully disabled (measures the "
        "instrumentation's disabled-path overhead; empties 'metrics')",
    )
    args = parser.parse_args(argv)

    report = run_bench(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    batch = report["batch"]
    affinity = report["machine"]["cpu_affinity"]
    print(
        f"wrote {args.out}: {batch['points']} points, "
        f"seq {batch['sequential']['wall_s']:.2f}s "
        f"({batch['sequential']['points_per_s']:.2f} pts/s), "
        f"par[{args.jobs}/{args.pool_mode}] {batch['parallel']['wall_s']:.2f}s "
        f"({batch['parallel']['points_per_s']:.2f} pts/s), "
        f"speedup {batch['speedup']:.2f}x on "
        f"{report['machine']['cpu_count']} CPUs ({affinity} usable)"
    )
    kernel = report["kernel"]
    speedup = kernel["speedup_numpy_over_python"]
    print(
        f"kernel: python {kernel['backends']['python']['solve_s']:.4f}s, "
        f"numpy {kernel['backends']['numpy']['solve_s']:.4f}s, "
        f"speedup {speedup:.2f}x (rank {kernel['backends']['numpy']['rank']})"
    )
    if not batch["identical"]:
        print(
            "ERROR: parallel sweep diverged from sequential output",
            file=sys.stderr,
        )
        return 1
    if speedup is not None and speedup < 1.0:
        print(
            f"ERROR: numpy backend slower than python ({speedup:.2f}x) — "
            "the vectorized kernels have regressed",
            file=sys.stderr,
        )
        return 1
    # Never-slower gate: with >= 2 usable CPUs the warm pool (or the
    # auto fallback) must at least break even against sequential.
    batch_speedup = batch["speedup"]
    if affinity >= 2 and batch_speedup is not None and batch_speedup < 1.0:
        print(
            f"ERROR: parallel batch slower than sequential "
            f"({batch_speedup:.2f}x on {affinity} usable CPUs) — "
            "the worker pool has regressed",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
