#!/usr/bin/env python3
"""Driving the rank metric from a netlist instead of a stochastic WLD.

The paper evaluates against the Davis closed-form WLD; real flows have
netlists.  This example builds a synthetic locality-driven netlist,
decomposes its multi-terminal nets into point-to-point wires (star and
chain models), and runs the same rank computation on each — showing the
metric is *design-dependent* by construction, exactly the property the
paper's introduction demands of an IA metric.

Run:

    python examples/netlist_driven_rank.py [--gates N] [--nets M]
"""

import argparse

from repro import (
    ArchitectureSpec,
    DieModel,
    RankProblem,
    build_architecture,
    compute_rank,
    get_node,
)
from repro.reporting.text import format_table
from repro.wld.davis import DavisParameters, davis_wld
from repro.wld.nets import synthetic_netlist, wld_from_nets


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=100_000)
    parser.add_argument("--nets", type=int, default=0,
                        help="net count (default: gates // 2)")
    parser.add_argument("--locality", type=float, default=0.02)
    args = parser.parse_args()
    net_count = args.nets or args.gates // 2

    node = get_node("130nm")
    arch = build_architecture(ArchitectureSpec(node=node))
    die = DieModel(node=node, gate_count=args.gates, repeater_fraction=0.4)

    nets = synthetic_netlist(args.gates, net_count, locality=args.locality)
    candidates = {
        "netlist (star)": wld_from_nets(nets, model="star"),
        "netlist (chain)": wld_from_nets(nets, model="chain"),
        "Davis closed form": davis_wld(DavisParameters(gate_count=args.gates)),
    }

    rows = []
    for name, wld in candidates.items():
        problem = RankProblem(
            arch=arch, die=die, wld=wld, clock_frequency=5e8
        )
        result = compute_rank(problem, bunch_size=5000, repeater_units=512)
        rows.append(
            (
                name,
                f"{wld.total_wires:,}",
                f"{wld.mean_length:.2f}",
                f"{result.rank:,}",
                f"{result.normalized:.6f}",
            )
        )

    print(
        format_table(
            ("WLD source", "wires", "mean len", "rank", "normalized"),
            rows,
            title=f"Rank of the same 130 nm stack under different WLDs "
                  f"({args.gates:,} gates)",
        )
    )
    print()
    print(
        "Reading: the architecture is identical in all three rows; only\n"
        "the design's wiring statistics differ — and the rank moves by\n"
        "2x.  The locality-driven netlists have far fewer, more local\n"
        "wires than the Davis worst-case closed form, so the same stack\n"
        "certifies a much larger share of them; star vs chain net\n"
        "decomposition shifts the number by a few percent more.  The\n"
        "metric is design-dependent by construction, which is what the\n"
        "paper's introduction demands of an IA quality measure."
    )


if __name__ == "__main__":
    main()
