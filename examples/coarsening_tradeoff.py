#!/usr/bin/env python3
"""Section 5.1: bunching accuracy vs runtime.

The paper reduces instance complexity by assigning wires in *bunches*
(10000 wires per bunch for its 1M-gate studies) and bounds the rank
error by the maximum bunch size.  This example measures that trade-off
directly: rank, a-priori error bound, and solver runtime as the bunch
size shrinks — demonstrating that the observed deviation stays far
inside the bound while runtime grows.

Run:

    python examples/coarsening_tradeoff.py [--gates N]
"""

import argparse

from repro.analysis.coarsening import coarsening_study, max_pairwise_deviation
from repro.core.scenarios import baseline_problem
from repro.reporting.text import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=1_000_000)
    args = parser.parse_args()

    problem = baseline_problem("130nm", args.gates)
    bunch_sizes = [50_000, 20_000, 10_000, 5_000, 2_000, 1_000]
    points = coarsening_study(problem, bunch_sizes=bunch_sizes)

    rows = []
    for point in points:
        rows.append(
            (
                point.bunch_size,
                point.result.rank,
                f"{point.result.normalized:.6f}",
                point.error_bound,
                f"{point.runtime_seconds * 1e3:.0f} ms",
            )
        )
    print(
        format_table(
            ("bunch size", "rank", "normalized", "error bound", "runtime"),
            rows,
            title=f"Bunching trade-off, {args.gates:,} gates at 130 nm",
        )
    )
    print()
    deviation = max_pairwise_deviation(points)
    worst_bound = max(p.error_bound for p in points)
    print(
        f"max observed rank deviation across bunch sizes: {deviation:,} wires\n"
        f"worst single-run a-priori bound:                {worst_bound:,} wires\n"
        "The observed deviation is covered by the Section 5.1 bound, so\n"
        "the paper's 10000-wire bunches were a safe speed/accuracy choice."
    )


if __name__ == "__main__":
    main()
