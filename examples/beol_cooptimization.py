#!/usr/bin/env python3
"""The Section 6 programme: co-optimizing a BEOL against the rank metric.

The paper concludes that "it is not possible to enable future MPU-class
designs by material improvements alone" and proposes optimizing
interconnect architectures directly against the rank metric.  This
example runs that full loop for a 130 nm design:

1. search a design space (tier allocations x dielectric classes x
   shielding levels) for the highest-rank stack under a metal-layer
   budget, and extract the rank-vs-layers Pareto frontier;
2. reconcile the winner's repeater provisioning with its actual usage
   (the paper's footnote 3 extension), right-sizing the die;
3. price the certified prefix in switching power, showing that the
   knobs that buy rank also buy energy.

Run:

    python examples/beol_cooptimization.py [--gates N]
"""

import argparse

from repro.analysis.reconcile import reconcile_repeater_area
from repro.core.scenarios import baseline_problem
from repro.optimize import DesignSpace, optimize_architecture
from repro.power import PowerModel, witness_power
from repro.reporting.text import format_table
from repro.units import NANO, to_mm2
from repro import compute_rank


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=400_000)
    args = parser.parse_args()

    problem = baseline_problem("130nm", args.gates)
    options = dict(bunch_size=5000, repeater_units=512)

    # -- 1. architecture search -------------------------------------------
    space = DesignSpace(
        node=problem.die.node,
        local_pairs=(1, 2),
        semi_global_pairs=(1, 2, 3),
        global_pairs=(1, 2),
        permittivities=(3.9, 3.6, 2.8),
        miller_factors=(2.0, 1.5, 1.0),
        max_metal_layers=12,
    )
    print(f"searching {space.size()} candidate stacks ...")
    outcome = optimize_architecture(problem, space, exhaustive_limit=200, **options)

    rows = [
        (c.label(), c.metal_layers, c.result.rank, f"{c.normalized:.6f}")
        for c in outcome.pareto
    ]
    print(
        format_table(
            ("stack", "layers", "rank", "normalized"),
            rows,
            title="Rank-vs-layers Pareto frontier",
        )
    )
    best = outcome.best
    print(f"\nbest stack: {best.label()}  ->  {best.result.summary()}")

    # -- 2. footnote-3 reconciliation -------------------------------------
    tuned = problem.with_arch(
        __import__("repro").build_architecture(best.spec)
    )
    reconciled = reconcile_repeater_area(tuned, **options)
    initial, final = reconciled.initial, reconciled.final
    print()
    print("Repeater-area reconciliation (footnote 3):")
    print(
        f"  provisioned {to_mm2(initial.provisioned_area):.3f} mm^2, "
        f"used {to_mm2(initial.used_area):.3f} mm^2 "
        f"({initial.utilized * 100:.0f}% utilized)"
    )
    print(
        f"  right-sized to {to_mm2(final.provisioned_area):.3f} mm^2 "
        f"(fraction {final.repeater_fraction:.3f}); "
        f"rank {initial.result.rank:,} -> {final.result.rank:,}"
    )

    # -- 3. power companion -------------------------------------------------
    result = compute_rank(tuned, collect_witness=True, **options)
    tables, _ = tuned.tables(bunch_size=5000)
    power = witness_power(
        tables, result.witness, tuned.clock_frequency, PowerModel()
    )
    print()
    print("Switching power of the certified prefix:")
    print(f"  wires:     {power.wires:,}")
    print(f"  wire cap:  {power.wire_power * 1e3:.2f} mW")
    print(f"  repeaters: {power.repeater_power * 1e3:.2f} mW")
    print(f"  total:     {power.total * 1e3:.2f} mW "
          f"({power.per_wire() / NANO:.2f} nW/wire)")


if __name__ == "__main__":
    main()
