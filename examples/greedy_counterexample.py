#!/usr/bin/env python3
"""Figure 2: greedy top-down wire assignment is suboptimal.

Reconstructs the paper's counterexample: four (near-)equal wires, two
layer-pairs whose repeaters differ sharply in cost, and a repeater
budget sized so that greedy — which fills the expensive top pair first —
burns the budget on two wires, while the optimum routes everything on
the cheap bottom pair and ranks all four.

Run:

    python examples/greedy_counterexample.py
"""

from repro import (
    ArchitectureSpec,
    DieModel,
    RankProblem,
    build_architecture,
    compute_rank,
    get_node,
)
from repro.delay.repeater import optimal_repeater_size
from repro.units import to_um2
from repro.wld.synthetic import wld_from_pairs


def build_figure2_problem() -> RankProblem:
    """Four wires, two pairs, budget = 2.2 expensive stages."""
    node = get_node("130nm")
    arch = build_architecture(
        ArchitectureSpec(
            node=node, local_pairs=1, semi_global_pairs=0, global_pairs=1
        )
    )
    s_top = optimal_repeater_size(arch.pair(0).rc, node.device)
    gates = 1000
    budget = 2.2 * s_top * node.device.min_inverter_area
    gate_area = node.gate_pitch ** 2 * gates
    die = DieModel(
        node=node,
        gate_count=gates,
        repeater_fraction=budget / (budget + gate_area),
    )
    wld = wld_from_pairs([(100.0, 1), (99.0, 1), (98.0, 1), (97.0, 1)])
    return RankProblem(arch=arch, die=die, wld=wld, clock_frequency=5e8)


def main() -> None:
    problem = build_figure2_problem()
    node = problem.die.node

    s_top = optimal_repeater_size(problem.arch.pair(0).rc, node.device)
    s_bot = optimal_repeater_size(problem.arch.pair(1).rc, node.device)
    print("Instance (the paper's Figure 2 shape):")
    print(f"  4 near-equal wires, 2 layer-pairs")
    print(f"  top-pair repeater size (cost):    {s_top:.0f}x minimum")
    print(f"  bottom-pair repeater size (cost): {s_bot:.0f}x minimum")
    print(
        f"  budget: {to_um2(problem.die.repeater_area):.2f} um^2 "
        f"(~2.2 top-pair stages, ~{2.2 * s_top / s_bot:.1f} bottom-pair stages)"
    )
    print()

    greedy = compute_rank(problem, solver="greedy")
    optimal = compute_rank(problem, solver="dp", repeater_units=256)
    brute = compute_rank(problem, solver="exhaustive", repeater_units=256)

    print(f"greedy assignment:     rank {greedy.rank}")
    print(f"optimal (DP):          rank {optimal.rank}")
    print(f"exhaustive check:      rank {brute.rank}")
    print()
    print(
        "Greedy packs the two longest wires onto the top pair and pays\n"
        "the expensive repeater rate, exhausting the budget after two\n"
        "wires; the DP routes all four wires on the bottom pair where\n"
        "repeaters are cheap — the paper's rank-4-vs-rank-2 separation."
    )
    assert optimal.rank == brute.rank == 4
    assert greedy.rank == 2


if __name__ == "__main__":
    main()
