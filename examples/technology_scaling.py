#!/usr/bin/env python3
"""Cross-node study: the same metric across 180 nm, 130 nm and 90 nm.

Evaluates the Table 2 baseline on the paper's three study designs
(1M gates at 180 nm, 1M at 130 nm, 4M at 90 nm — Section 5.2) plus a
fixed-size design on all three nodes, showing how the rank metric
quantifies technology scaling: faster devices and finer wiring raise
the achievable rank, while growing the design at a fixed node stresses
the same stack with a longer WLD.

Run:

    python examples/technology_scaling.py [--quick]
"""

import argparse

from repro.analysis.compare import compare_nodes
from repro.reporting.tables import format_node_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use 100k-gate designs everywhere (seconds instead of minutes)",
    )
    args = parser.parse_args()

    if args.quick:
        paper_designs = [("180nm", 100_000), ("130nm", 100_000), ("90nm", 400_000)]
        fixed_designs = [(n, 100_000) for n in ("180nm", "130nm", "90nm")]
    else:
        paper_designs = [
            ("180nm", 1_000_000),
            ("130nm", 1_000_000),
            ("90nm", 4_000_000),
        ]
        fixed_designs = [(n, 1_000_000) for n in ("180nm", "130nm", "90nm")]

    print("The paper's Section 5.2 baseline designs:")
    print(
        format_node_table(
            compare_nodes(designs=paper_designs, bunch_size=10_000),
            title="",
        )
    )
    print()
    print("Fixed design size across nodes (pure technology effect):")
    print(
        format_node_table(
            compare_nodes(designs=fixed_designs, bunch_size=10_000),
            title="",
        )
    )
    print()
    print(
        "Reading: at a fixed gate count, each node generation lifts the\n"
        "normalized rank — faster repeater stages loosen the short-wire\n"
        "delay wall and cheaper (smaller) repeaters stretch the budget.\n"
        "Growing the design at a fixed node adds long wires faster than\n"
        "routing resources, which is the pressure the paper's metric is\n"
        "built to quantify."
    )


if __name__ == "__main__":
    main()
