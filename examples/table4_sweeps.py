#!/usr/bin/env python3
"""Regenerate the paper's Table 4: rank vs K, M, C and R.

Sweeps ILD permittivity, Miller coupling factor, target clock frequency
and repeater-area fraction around the 130 nm / 1M-gate baseline, and
prints each column side by side with the paper's reported values.

Run:

    python examples/table4_sweeps.py [--gates N] [--columns KMCR]

The full 1M-gate regeneration of all four columns takes a couple of
minutes; ``--gates 200000`` reproduces the shapes in seconds.
"""

import argparse
import time

from repro.analysis.sweep import (
    sweep_clock,
    sweep_miller,
    sweep_permittivity,
    sweep_repeater_fraction,
)
from repro.core.scenarios import baseline_problem
from repro.reporting.tables import format_sweep_table

SWEEPS = {
    "K": sweep_permittivity,
    "M": sweep_miller,
    "C": sweep_clock,
    "R": sweep_repeater_fraction,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=1_000_000)
    parser.add_argument(
        "--columns",
        default="KMCR",
        help="subset of K, M, C, R to regenerate (default: all)",
    )
    parser.add_argument("--bunch", type=int, default=10_000)
    args = parser.parse_args()

    baseline = baseline_problem("130nm", args.gates)
    for knob in args.columns:
        if knob not in SWEEPS:
            raise SystemExit(f"unknown column {knob!r}; choose from K, M, C, R")
        start = time.perf_counter()
        sweep = SWEEPS[knob](baseline, bunch_size=args.bunch, repeater_units=512)
        elapsed = time.perf_counter() - start
        print(format_sweep_table(sweep))
        print(
            f"({len(sweep.points)} points in {elapsed:.1f} s; "
            f"improvement first->last: {sweep.improvement() * 100:+.1f}%)"
        )
        print()


if __name__ == "__main__":
    main()
