#!/usr/bin/env python3
"""Using the rank metric to explore interconnect architectures.

The paper's Section 6 proposes optimizing IAs *against* the rank
metric.  This example does a first step of that: for a fixed 130 nm
design it varies the layer-pair allocation (how many semi-global and
global pairs to build) and the dielectric, and ranks the candidate
stacks — the workflow a BEOL architect would run.

Run:

    python examples/custom_architecture.py [--gates N]
"""

import argparse

from repro import ArchitectureSpec, build_architecture, compute_rank
from repro.core.scenarios import baseline_problem
from repro.reporting.text import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=400_000)
    args = parser.parse_args()

    baseline = baseline_problem("130nm", args.gates)
    node = baseline.die.node

    candidates = []
    for semi_global in (1, 2, 3):
        for global_pairs in (1, 2):
            for k in (3.9, 2.8):
                candidates.append(
                    ArchitectureSpec(
                        node=node,
                        local_pairs=1,
                        semi_global_pairs=semi_global,
                        global_pairs=global_pairs,
                        permittivity=k,
                    )
                )

    rows = []
    for spec in candidates:
        problem = baseline.with_arch(build_architecture(spec))
        result = compute_rank(problem, bunch_size=5000, repeater_units=512)
        rows.append(
            (
                f"G{spec.global_pairs}/SG{spec.semi_global_pairs}/L1 k={spec.permittivity}",
                2 * spec.num_pairs,
                result.rank,
                f"{result.normalized:.6f}",
                "yes" if result.fits else "NO",
            )
        )

    rows.sort(key=lambda row: -float(row[3]))
    print(
        format_table(
            ("stack", "metal layers", "rank", "normalized", "fits"),
            rows,
            title=f"Candidate 130 nm stacks for a {args.gates:,}-gate design",
        )
    )
    print()
    print(
        "Reading: once the WLD fits, extra layer-pairs buy little —\n"
        "the binding resources are the repeater budget and the short-\n"
        "wire delay wall, so a low-k dielectric outranks an extra metal\n"
        "pair.  This is the paper's 'co-optimize across materials,\n"
        "process and design' conclusion, made quantitative."
    )


if __name__ == "__main__":
    main()
