#!/usr/bin/env python3
"""The paper's headline: Miller-factor vs permittivity equivalence.

The abstract observes that a ~42% reduction in Miller coupling factor
(a *design* improvement: shielding, spacing, skew management) buys the
same rank improvement as a ~38% reduction in ILD permittivity (a
*materials* improvement: low-k dielectrics).  This example regenerates
that comparison: it sweeps both knobs from the 130 nm baseline, inverts
the sweeps at common rank levels, and prints how much each knob must
move to reach each level.

Run:

    python examples/material_vs_geometry.py [--gates N]
"""

import argparse

from repro.analysis.sensitivity import miller_permittivity_equivalence
from repro.analysis.sweep import sweep_miller, sweep_permittivity
from repro.core.scenarios import baseline_problem
from repro.reporting.tables import format_equivalence_table, format_sweep_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=1_000_000)
    parser.add_argument("--bunch", type=int, default=10_000)
    args = parser.parse_args()

    baseline = baseline_problem("130nm", args.gates)
    options = dict(bunch_size=args.bunch, repeater_units=512)

    print("Sweeping ILD permittivity (materials knob)...")
    k_sweep = sweep_permittivity(baseline, **options)
    print("Sweeping Miller coupling factor (design knob)...")
    m_sweep = sweep_miller(baseline, **options)
    print()
    print(format_sweep_table(k_sweep))
    print()
    print(format_sweep_table(m_sweep))
    print()

    points = miller_permittivity_equivalence(k_sweep, m_sweep, num_levels=8)
    print(
        format_equivalence_table(
            points,
            knob_a="K",
            knob_b="M",
            title="Equivalent reductions reaching the same normalized rank",
        )
    )
    print()
    print(
        "Paper datum: k = 2.4 (-38%) gives rank 0.5016 while M = 1.15\n"
        "(-42.5%) gives 0.5184 — 'the same increase in rank'.  A M/K\n"
        "ratio near 1.0 in the table above reproduces that conclusion:\n"
        "shielding buys what low-k buys, so materials alone are not the\n"
        "only path to high-rank interconnect architectures."
    )


if __name__ == "__main__":
    main()
