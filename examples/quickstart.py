#!/usr/bin/env python3
"""Quickstart: compute the rank of an interconnect architecture.

Builds the paper's Table 2 baseline — a 1M-gate design at 130 nm with
1 global + 2 semi-global + 1 local layer-pairs, k = 3.9, Miller factor
2.0, a 0.4 repeater-area fraction and a 500 MHz target clock — and
computes its rank: the number of longest wires of the Davis wire length
distribution that all meet their target delays under optimal wire
assignment and repeater allocation.

Run:

    python examples/quickstart.py [--gates N]

A 1M-gate run takes a few seconds; pass ``--gates 100000`` for an
instant smoke run.
"""

import argparse
import time

from repro import compute_rank
from repro.core.scenarios import baseline_problem
from repro.units import to_mm2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gates", type=int, default=1_000_000)
    args = parser.parse_args()

    problem = baseline_problem("130nm", args.gates)

    print("Design")
    print(f"  gates:            {args.gates:,}")
    print(f"  WLD:              {problem.wld.describe()}")
    print(f"  die area:         {to_mm2(problem.die.die_area):.2f} mm^2")
    print(f"  repeater budget:  {to_mm2(problem.die.repeater_area):.2f} mm^2")
    print(f"  architecture:     {problem.arch.name}")
    print()

    start = time.perf_counter()
    result = compute_rank(
        problem,
        bunch_size=10_000,  # the paper's Section 5.2 bunch size
        repeater_units=512,
        collect_witness=True,
    )
    elapsed = time.perf_counter() - start

    print("Rank")
    print(f"  {result.summary()}")
    print(f"  wall clock: {elapsed:.2f} s")
    print()

    if result.witness:
        print("Winning prefix assignment (top layer-pair first):")
        tables, _ = problem.tables(bunch_size=10_000)
        for segment in result.witness:
            pair = problem.arch.pair(segment.pair)
            wires = int(
                tables.cum_wires[segment.end_group]
                - tables.cum_wires[segment.start_group]
            )
            print(
                f"  {pair.name:>14}: {wires:>9,} wires, "
                f"{segment.repeaters:,} repeaters inserted"
            )
    print()
    print(
        "Interpretation: the", f"{result.rank:,}", "longest wires of the WLD"
        " all meet their length-proportional target delays; wire number",
        f"{result.rank + 1:,}", "is the first that cannot.",
    )


if __name__ == "__main__":
    main()
